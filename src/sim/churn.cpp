#include "sim/churn.hpp"

#include <algorithm>
#include <cstdint>

#include "antenna/transmission.hpp"
#include "common/assert.hpp"
#include "common/constants.hpp"
#include "graph/scc_parallel.hpp"
#include "mst/emst.hpp"
#include "parallel/thread_pool.hpp"

namespace dirant::sim {

namespace {

/// splitmix64 — the same per-stream mixer the audit layer seeds its trial
/// RNGs with: every (seed, tag) pair gets an independent, reproducible
/// stream regardless of how many draws other streams consumed.
std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

/// Uniform double in [0, 1) from the top 53 bits.
double u01(std::uint64_t z) { return static_cast<double>(z >> 11) * 0x1.0p-53; }

}  // namespace

const char* to_string(ChurnEventKind k) {
  switch (k) {
    case ChurnEventKind::kFail:
      return "fail";
    case ChurnEventKind::kRecover:
      return "recover";
    case ChurnEventKind::kMove:
      return "move";
  }
  return "?";
}

ChurnEngine::ChurnEngine() = default;
ChurnEngine::~ChurnEngine() = default;

void ChurnEngine::set_threads(int threads) {
  threads_ = par::ensure_pool(pool_, threads);
}

const StepReport& ChurnEngine::init(std::span<const geom::Point> pts,
                                    const core::ProblemSpec& spec,
                                    const ChurnOptions& opts) {
  DIRANT_ASSERT_MSG(!pts.empty(), "empty sensor set");
  spec_ = spec;
  opts_ = opts;
  n_orig_ = static_cast<int>(pts.size());
  DIRANT_ASSERT_MSG(opts_.min_alive >= 1, "min_alive must be positive");
  positions_.assign(pts.begin(), pts.end());
  alive_.assign(static_cast<size_t>(n_orig_), 1);
  alive_count_ = n_orig_;
  moved_.assign(static_cast<size_t>(n_orig_), 0);
  recovered_.assign(static_cast<size_t>(n_orig_), 0);
  changed_pos_.assign(static_cast<size_t>(n_orig_), 0);
  dirty_.assign(static_cast<size_t>(n_orig_), 1);  // everything is new
  event_nodes_.clear();
  batch_dead_.clear();
  tree_degree_.assign(static_cast<size_t>(n_orig_), 0);
  repair_.invalidate();       // raw EMST unavailable after a full orient
  orient_mem_.valid = false;  // no incremental plan to diff against yet
  prev_o_.reset(n_orig_, std::max(1, spec.k));
  batch_ = 0;

  // Batch 0 has no previous batch: the prev maps alias the identity.
  comp_of_.resize(static_cast<size_t>(n_orig_));
  orig_of_.resize(static_cast<size_t>(n_orig_));
  for (int u = 0; u < n_orig_; ++u) comp_of_[u] = orig_of_[u] = u;
  prev_comp_of_ = comp_of_;
  prev_orig_of_ = orig_of_;
  compact_pts_.assign(pts.begin(), pts.end());

  session_.orient(compact_pts_, spec_);
  reseed_pool();

  graph::Digraph fresh = antenna::induced_digraph_fast(
      compact_pts_, session_.last_result().orientation, kAngleTol,
      kRadiusAbsTol, cx_.transmission, threads_, pool_.get());
  std::move(dg_).release(cx_.transmission.offsets, cx_.transmission.targets);
  dg_ = std::move(fresh);

  // One Tarjan pass covers both the certificate's SCC count and the batch-0
  // coverage report (parallel_scc_count would return the identical count —
  // the partition is a graph property).
  const int best = graph::largest_scc(dg_, cx_.scc, scc_result_, scc_sizes_);
  report_.batch = 0;
  report_.alive = alive_count_;
  report_.events.clear();
  report_.suggested_repair.clear();
  report_.dirty_fraction = 0.0;
  report_.incremental_plan = false;
  report_.incremental_digraph = false;
  report_.localized_mst = false;
  report_.mst_fallback = nullptr;
  report_.mst_region = 0;
  report_.incremental_orient = false;
  report_.orient_planned = 0;
  report_.warm_orient = false;
  report_.cert_reused = false;
  report_.escalation = nullptr;
  report_.certificate = core::make_certificate(session_.last_result(), spec_,
                                               scc_result_.count);
  if (scc_result_.count == 1) {
    recert_.rebuild(dg_, transpose_, orig_of_, comp_of_, n_orig_);
  } else {
    recert_.invalidate();
  }
  auto& deg = report_.degraded;
  deg.stranded.clear();
  deg.largest_scc = best < 0 ? 0 : scc_sizes_[best];
  deg.coverage_fraction =
      alive_count_ > 0
          ? static_cast<double>(deg.largest_scc) / alive_count_
          : 0.0;
  deg.degraded = deg.largest_scc < alive_count_;
  deg.k_level = -1;
  for (int c = 0; c < alive_count_; ++c) {
    if (scc_result_.component[c] != best) deg.stranded.push_back(orig_of_[c]);
  }

  snapshot_orientation();
  refresh_tree_degrees();
  inited_ = true;
  return report_;
}

const StepReport& ChurnEngine::step(std::span<const ChurnEvent> events) {
  DIRANT_ASSERT_MSG(inited_, "ChurnEngine::init must run before step");
  ++batch_;
  report_.batch = batch_;
  report_.events.clear();
  std::fill(moved_.begin(), moved_.end(), 0);
  std::fill(recovered_.begin(), recovered_.end(), 0);
  std::fill(changed_pos_.begin(), changed_pos_.end(), 0);
  batch_dead_.clear();

  // ---- 1. Apply the batch sequentially.  Every rejection is a pure
  // function of the state built by the preceding events, so logs replay
  // identically from the same seed + schedule.  Consecutive fails buffer
  // their pool erases and flush in one batched scan (the closure is
  // identical to per-node erases; see DelaunayEdgePool::erase_nodes) —
  // the flush happens before any pool *insert* so the interleaving the
  // event order prescribes is preserved.
  pending_fails_.clear();
  const auto flush_fails = [this] {
    pool_edges_.erase_nodes(pending_fails_);
    pending_fails_.clear();
  };
  for (const ChurnEvent& e : events) {
    bool ok = e.node >= 0 && e.node < n_orig_;
    if (ok) {
      switch (e.kind) {
        case ChurnEventKind::kFail:
          ok = alive_[e.node] != 0 && alive_count_ > opts_.min_alive;
          if (ok) {
            alive_[e.node] = 0;
            --alive_count_;
            pending_fails_.push_back(e.node);
            batch_dead_.push_back(e.node);
          }
          break;
        case ChurnEventKind::kRecover:
          ok = alive_[e.node] == 0;
          if (ok) {
            alive_[e.node] = 1;
            ++alive_count_;
            flush_fails();
            pool_edges_.insert_node(e.node, alive_);
            recovered_[e.node] = 1;
            changed_pos_[e.node] = 1;
          }
          break;
        case ChurnEventKind::kMove:
          ok = alive_[e.node] != 0;
          if (ok) {
            flush_fails();
            pool_edges_.erase_node(e.node);
            positions_[e.node] = e.to;
            pool_edges_.insert_node(e.node, alive_);
            moved_[e.node] = 1;
            changed_pos_[e.node] = 1;
          }
          break;
      }
    }
    report_.events.push_back({e, ok});
  }
  flush_fails();
  event_nodes_.clear();
  for (int u = 0; u < n_orig_; ++u) {
    if (alive_[u] && (moved_[u] || recovered_[u])) event_nodes_.push_back(u);
  }
  // Event order may revisit a node (fail, recover, fail): the dead list is
  // consumed as a sorted set by the MST-event derivation and the suspect
  // merge below.
  std::sort(batch_dead_.begin(), batch_dead_.end());
  batch_dead_.erase(std::unique(batch_dead_.begin(), batch_dead_.end()),
                    batch_dead_.end());

  rebuild_compact();
  audit_frozen();  // pre-repair: what does the field look like right now?
  replan();
  compute_dirty();
  build_digraph();

  report_.certificate =
      core::make_certificate(session_.last_result(), spec_, certify_sccs());
  report_.alive = alive_count_;

  snapshot_orientation();
  refresh_tree_degrees();
  return report_;
}

void ChurnEngine::rebuild_compact() {
  prev_comp_of_.swap(comp_of_);
  prev_orig_of_.swap(orig_of_);
  comp_of_.assign(static_cast<size_t>(n_orig_), -1);
  orig_of_.clear();
  compact_pts_.clear();
  for (int u = 0; u < n_orig_; ++u) {
    if (!alive_[u]) continue;
    comp_of_[u] = static_cast<int>(orig_of_.size());
    orig_of_.push_back(u);
    compact_pts_.push_back(positions_[u]);
  }
}

void ChurnEngine::audit_frozen() {
  // Frozen survivor graph: the previous certified digraph restricted to
  // stable nodes (alive in both batches, not moved), remapped into the new
  // compact space.  Moved/recovered nodes are isolated — their old sectors
  // aimed at old neighbourhoods, so their coverage is unknown until the
  // re-plan re-aims them (conservatively stranded).
  const int m = alive_count_;
  auto& offs = frozen_offsets_;
  auto& tgts = frozen_targets_;
  offs.clear();
  offs.push_back(0);
  tgts.clear();
  for (int c = 0; c < m; ++c) {
    const int u = orig_of_[c];
    if (prev_comp_of_[u] >= 0 && !moved_[u] && !recovered_[u]) {
      for (int t : dg_.out(prev_comp_of_[u])) {
        const int v = prev_orig_of_[t];
        if (!alive_[v] || moved_[v] || recovered_[v]) continue;
        tgts.push_back(comp_of_[v]);
      }
    }
    offs.push_back(static_cast<int>(tgts.size()));
  }
  graph::Digraph frozen(std::move(offs), std::move(tgts));

  const int best = graph::largest_scc(frozen, cx_.scc, scc_result_,
                                      scc_sizes_);
  auto& deg = report_.degraded;
  deg.stranded.clear();
  deg.largest_scc = best < 0 ? 0 : scc_sizes_[best];
  deg.coverage_fraction =
      m > 0 ? static_cast<double>(deg.largest_scc) / m : 0.0;
  deg.degraded = deg.largest_scc < m;
  for (int c = 0; c < m; ++c) {
    if (scc_result_.component[c] != best) deg.stranded.push_back(orig_of_[c]);
  }
  deg.k_level = -1;
  if (opts_.probe_k_level) {
    if (deg.largest_scc < m) {
      deg.k_level = 0;
    } else {
      deg.k_level = 1;
      frozen.reversed_into(transpose_);
      probe_removed_.assign(static_cast<size_t>(m), 0);
      bool robust = true;
      for (int c = 0; c < m && robust; ++c) {
        probe_removed_[c] = 1;
        robust = graph::is_strongly_connected(frozen, transpose_, reach_,
                                              probe_removed_.data());
        probe_removed_[c] = 0;
      }
      if (robust) deg.k_level = 2;
    }
  }
  std::move(frozen).release(frozen_offsets_, frozen_targets_);
}

void ChurnEngine::replan() {
  report_.localized_mst = false;
  report_.mst_fallback = nullptr;
  report_.mst_region = 0;
  report_.incremental_orient = false;
  report_.orient_planned = 0;
  report_.warm_orient = false;
  const char* esc = nullptr;
  if (opts_.force_full) {
    esc = "forced";
  } else if (!pool_edges_.valid()) {
    esc = "pool-invalid";
  } else if (alive_count_ < session_.engine().config().prim_cutoff) {
    // A fresh plan at this size would take Prim, whose tree the pool path
    // cannot reproduce under ties — stay bit-identical by escalating.
    esc = "below-prim-cutoff";
  } else if (pool_edges_.oversized(alive_count_)) {
    esc = "pool-oversized";
  }
  bool localized = false;
  if (esc == nullptr) {
    // ---- Rung 1: localized repair of the maintained EMST.  Success skips
    // the pool Kruskal entirely; the exported tree is byte-identical to it
    // (mst/repair.hpp), so everything downstream cannot tell the paths
    // apart.  Every fallback reason is a pure function of the event
    // sequence — deterministic across thread counts.
    if (!repair_.valid()) {
      report_.mst_fallback = "mst-unseeded";
    } else {
      derive_mst_events();
      try {
        report_.mst_fallback =
            repair_.apply_batch(positions_, alive_, alive_count_, mst_removed_,
                                mst_inserted_, pool_edges_.edges());
      } catch (const contract_violation&) {
        // A reconnect pushed a maintained-tree node past the adjacency cap
        // mid-repair; the state is torn, so invalidate and reseed below.
        report_.mst_fallback = "mst-degree";
        repair_.invalidate();
      }
      if (report_.mst_fallback == nullptr) {
        repair_.export_tree(comp_of_, compact_pts_, inc_tree_);
        localized = true;
        report_.mst_region = repair_.last_region();
      }
    }
    // ---- Rung 2: Kruskal over the maintained candidate pool.
    if (!localized) {
      cand_compact_.clear();
      cand_compact_.reserve(pool_edges_.edges().size());
      for (const auto& [a, b] : pool_edges_.edges()) {
        // Pool endpoints are always alive; compaction preserves order.
        cand_compact_.emplace_back(comp_of_[a], comp_of_[b]);
      }
      try {
        // Kruskal over any candidate superset of the Delaunay edges yields
        // the unique EMST under the (d2, min, max) total order — the exact
        // tree a from-scratch plan builds (mst/repair.hpp).
        mst::kruskal_emst(compact_pts_, cand_compact_, inc_tree_,
                          session_.emst_scratch().kruskal);
      } catch (const contract_violation&) {
        esc = "pool-disconnected";
      }
      if (esc == nullptr) {
        // Seed the localized layer from the exact tree just built so the
        // next batch can take rung 1.
        repair_.seed(inc_tree_, orig_of_, positions_, alive_);
      }
    }
    if (esc == nullptr) {
      // Localized batches carry the repair layer's net tree-edge delta so
      // the warm orienter can re-hang its recorded tree directly; rung-2
      // batches re-derive everything but still run through the recording
      // incremental path, keeping the plan memory warm across pool-Kruskal
      // reseeds instead of forcing an all-dirty rebuild next batch.
      const core::OrientWarmDelta delta{positions_, repair_.last_removed(),
                                        repair_.last_added(), event_nodes_};
      report_.incremental_orient = session_.orient_on_emst_incremental(
          compact_pts_, inc_tree_, spec_, orient_mem_, orig_of_, comp_of_,
          changed_pos_, prev_o_, localized ? &delta : nullptr);
      report_.orient_planned =
          report_.incremental_orient
              ? static_cast<int>(orient_mem_.planned.size())
              : 0;
      report_.warm_orient =
          report_.incremental_orient && orient_mem_.last_warm;
    }
  }
  if (esc != nullptr) {
    session_.orient(compact_pts_, spec_);
    reseed_pool();
    repair_.invalidate();  // raw EMST not recoverable from the full pipeline
    orient_mem_.valid = false;
  }
  report_.escalation = esc;
  report_.incremental_plan = esc == nullptr;
  report_.localized_mst = localized && esc == nullptr;
  if (!report_.localized_mst) report_.mst_region = 0;
}

void ChurnEngine::derive_mst_events() {
  // Removals = nodes in the previous batch's tree whose vertex left or
  // moved; insertions = alive nodes (re)entering at their current position.
  // A fail+recover node appears in both (drop + re-insert, exact); a
  // recover+move only inserts; a move+fail only removes.  Both lists come
  // out ascending, as LocalMstRepair::apply_batch expects.
  mst_removed_.clear();
  size_t i = 0, j = 0;
  const auto was_in_tree = [this](int u) { return prev_comp_of_[u] >= 0; };
  while (i < batch_dead_.size() || j < event_nodes_.size()) {
    int u;
    if (j == event_nodes_.size() ||
        (i < batch_dead_.size() && batch_dead_[i] <= event_nodes_[j])) {
      u = batch_dead_[i];
      if (j < event_nodes_.size() && event_nodes_[j] == u) ++j;
      ++i;
    } else {
      u = event_nodes_[j++];
    }
    if (was_in_tree(u)) mst_removed_.push_back(u);
  }
  mst_inserted_.assign(event_nodes_.begin(), event_nodes_.end());
}

int ChurnEngine::certify_sccs() {
  report_.cert_reused = false;
  if (core::can_reuse_scc_certificate(opts_.force_full,
                                      report_.incremental_digraph,
                                      recert_.valid())) {
    // Suspects = this batch's dirty re-plan set ∪ its dead nodes — exactly
    // the rows the patch rebuilt or dropped, which is every place a cached
    // certificate edge can have broken (graph/recert.hpp).  Both inputs are
    // ascending; merge without duplicates.
    suspects_.clear();
    const auto& sr = report_.suggested_repair;
    size_t i = 0, j = 0;
    while (i < sr.size() || j < batch_dead_.size()) {
      int u;
      if (j == batch_dead_.size() ||
          (i < sr.size() && sr[i] <= batch_dead_[j])) {
        u = sr[i];
        if (j < batch_dead_.size() && batch_dead_[j] == u) ++j;
        ++i;
      } else {
        u = batch_dead_[j++];
      }
      suspects_.push_back(u);
    }
    if (recert_.repair(dg_, orig_of_, comp_of_, compact_pts_,
                       cx_.transmission.grid, patch_qr_, suspects_,
                       changed_pos_, cx_.transmission.candidates)) {
      report_.cert_reused = true;
      return 1;
    }
  }
  const int sccs =
      threads_ > 1
          ? graph::parallel_scc_count(dg_, cx_.par_scc, threads_, pool_.get())
          : graph::scc_count(dg_, cx_.scc);
  if (sccs == 1) {
    recert_.rebuild(dg_, transpose_, orig_of_, comp_of_, n_orig_);
  } else {
    recert_.invalidate();
  }
  return sccs;
}

void ChurnEngine::reseed_pool() {
  auto& es = session_.emst_scratch();
  if (es.last_kind == mst::EngineKind::kDelaunayKruskal ||
      es.last_kind == mst::EngineKind::kBoruvka) {
    pool_edges_.seed(es.candidates.edges, orig_of_.data());
  } else {
    // Prim ran (small or degenerate input): the candidate buffer is absent
    // or stale, so the pool stays invalid and the next step escalates too.
    pool_edges_.invalidate();
  }
}

void ChurnEngine::compute_dirty() {
  const auto& o = session_.last_result().orientation;
  report_.suggested_repair.clear();
  int dirty_count = 0;
  if (report_.incremental_orient) {
    // Only re-planned rows can differ from the snapshot — every other row
    // was *copied* from it, so node_equals holds by construction, and
    // dirty_ is all-zero for alive nodes between batches (established by
    // snapshot_orientation).  mem.planned is ascending in compact space,
    // hence ascending in original space: suggested_repair comes out in the
    // same order the full scan would emit.
    for (int c : orient_mem_.planned) {
      const int u = orig_of_[c];
      const bool d =
          moved_[u] || recovered_[u] || !o.node_equals(c, prev_o_, u);
      dirty_[u] = d;
      if (d) {
        ++dirty_count;
        report_.suggested_repair.push_back(u);
      }
    }
  } else {
    for (int c = 0; c < alive_count_; ++c) {
      const int u = orig_of_[c];
      const bool d =
          moved_[u] || recovered_[u] || !o.node_equals(c, prev_o_, u);
      dirty_[u] = d;
      if (d) {
        ++dirty_count;
        report_.suggested_repair.push_back(u);
      }
    }
  }
  report_.dirty_fraction =
      alive_count_ > 0 ? static_cast<double>(dirty_count) / alive_count_ : 0.0;
}

void ChurnEngine::build_digraph() {
  const auto& o = session_.last_result().orientation;
  const bool patch = !opts_.force_full &&
                     report_.dirty_fraction <= opts_.dirty_threshold;
  report_.incremental_digraph = patch;
  if (!patch) {
    graph::Digraph fresh = antenna::induced_digraph_fast(
        compact_pts_, o, kAngleTol, kRadiusAbsTol, cx_.transmission, threads_,
        pool_.get());
    std::move(dg_).release(cx_.transmission.offsets, cx_.transmission.targets);
    dg_ = std::move(fresh);
    return;
  }

  // ---- Row patch.  Clean rows (sectors unchanged, node not moved) keep
  // their previous edge set: dead targets drop, moved/recovered targets
  // drop and are retested along with every other event node — their
  // positions are the only inputs to those memberships that changed.
  // Dirty rows rebuild from a grid query.  Row *order* differs from the
  // full builder's, but the per-row edge sets are identical by induction,
  // and everything downstream (SCC count, certificate) is order-blind.
  const double qr =
      o.max_radius() * (1.0 + kRadiusRelTol) + kRadiusAbsTol + 1e-12;
  patch_qr_ = qr;  // certify_sccs re-queries the same grid at this radius
  auto& grid = cx_.transmission.grid;
  grid.rebuild(compact_pts_, std::max(qr / 2.0, 1e-12));
  auto& offs = patch_offsets_;
  auto& tgts = patch_targets_;
  offs.clear();
  offs.push_back(0);
  tgts.clear();
  auto& hits = cx_.transmission.candidates;
  for (int c = 0; c < alive_count_; ++c) {
    const int u = orig_of_[c];
    if (dirty_[u]) {
      hits.clear();
      grid.within(compact_pts_[c], qr, c, hits);
      for (int v : hits) {
        if (antenna::sector_accepts(compact_pts_, o, c, v)) {
          tgts.push_back(v);
        }
      }
    } else {
      for (int t : dg_.out(prev_comp_of_[u])) {
        const int v = prev_orig_of_[t];
        if (!alive_[v] || moved_[v] || recovered_[v]) continue;
        tgts.push_back(comp_of_[v]);
      }
      for (int vo : event_nodes_) {
        if (antenna::sector_accepts(compact_pts_, o, c, comp_of_[vo])) {
          tgts.push_back(comp_of_[vo]);
        }
      }
    }
    offs.push_back(static_cast<int>(tgts.size()));
  }
  graph::Digraph fresh(std::move(offs), std::move(tgts));
  std::move(dg_).release(patch_offsets_, patch_targets_);
  dg_ = std::move(fresh);
}

void ChurnEngine::snapshot_orientation() {
  const auto& o = session_.last_result().orientation;
  for (int c = 0; c < alive_count_; ++c) {
    const int u = orig_of_[c];
    if (dirty_[u]) {
      prev_o_.copy_node(u, o, c);
      // Leave dirty_ all-zero over the alive set: compute_dirty's
      // planned-only path relies on unplanned rows still reading 0.
      dirty_[u] = 0;
    }
  }
}

void ChurnEngine::refresh_tree_degrees() {
  std::fill(tree_degree_.begin(), tree_degree_.end(), 0);
  for (const auto& e : session_.last_tree().edges) {
    ++tree_degree_[orig_of_[e.u]];
    ++tree_degree_[orig_of_[e.v]];
  }
}

void ChurnEngine::poisson_schedule(std::uint64_t seed, int batch_tag,
                                   double fail_rate, double recover_rate,
                                   double move_rate, double move_radius,
                                   std::vector<ChurnEvent>& out) const {
  const std::uint64_t h = splitmix(
      seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(batch_tag + 1));
  for (int u = 0; u < n_orig_; ++u) {
    const std::uint64_t zu =
        splitmix(h + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(u + 1));
    if (!alive_[u]) {
      if (u01(splitmix(zu ^ 1)) < recover_rate) {
        out.push_back({ChurnEventKind::kRecover, u, {}});
      }
      continue;
    }
    if (u01(splitmix(zu ^ 2)) < fail_rate) {
      out.push_back({ChurnEventKind::kFail, u, {}});
      continue;
    }
    if (u01(splitmix(zu ^ 3)) < move_rate) {
      geom::Point p = positions_[u];
      p.x += move_radius * (2.0 * u01(splitmix(zu ^ 4)) - 1.0);
      p.y += move_radius * (2.0 * u01(splitmix(zu ^ 5)) - 1.0);
      out.push_back({ChurnEventKind::kMove, u, p});
    }
  }
}

void ChurnEngine::adversarial_schedule(int count,
                                       std::vector<ChurnEvent>& out) const {
  // Highest spanning-tree degree first: a tree's internal nodes are its
  // articulation points, so this is the "kill the articulation set"
  // schedule.  (-degree, id) sort makes ties deterministic.
  std::vector<std::pair<int, int>> order;
  order.reserve(static_cast<size_t>(alive_count_));
  for (int u = 0; u < n_orig_; ++u) {
    if (alive_[u]) order.emplace_back(-tree_degree_[u], u);
  }
  std::sort(order.begin(), order.end());
  const int k = std::min(count, static_cast<int>(order.size()));
  for (int i = 0; i < k; ++i) {
    out.push_back({ChurnEventKind::kFail, order[i].second, {}});
  }
}

}  // namespace dirant::sim
