#include "sim/energy.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"

namespace dirant::sim {

double node_transmit_energy(const antenna::Orientation& o, int u,
                            const EnergyModel& model) {
  double node = 0.0;
  for (const auto& s : o.antennas(u)) {
    const double aperture = std::max(s.width, model.min_aperture);
    node += aperture / kTwoPi * std::pow(s.radius, model.path_loss_exponent);
  }
  return node;
}

double drain_battery(double& charge, double cost) {
  if (cost <= 0.0) return 0.0;
  const double drained = std::min(charge, cost);
  charge -= drained;  // clamped: never below zero
  return drained;
}

EnergyReport energy_report(const antenna::Orientation& o,
                           const EnergyModel& model) {
  EnergyReport rep;
  const int n = o.size();
  if (n == 0) return rep;
  for (int u = 0; u < n; ++u) {
    const double node = node_transmit_energy(o, u, model);
    double rmax = 0.0;
    for (const auto& s : o.antennas(u)) {
      rmax = std::max(rmax, s.radius);
    }
    rep.total += node;
    rep.max_per_node = std::max(rep.max_per_node, node);
    rep.omni_total += std::pow(rmax, model.path_loss_exponent);
  }
  rep.mean_per_node = rep.total / n;
  rep.saving_factor = rep.total > 0.0 ? rep.omni_total / rep.total : 0.0;
  return rep;
}

}  // namespace dirant::sim
