#include "sim/energy.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"

namespace dirant::sim {

EnergyReport energy_report(const antenna::Orientation& o,
                           const EnergyModel& model) {
  EnergyReport rep;
  const int n = o.size();
  if (n == 0) return rep;
  for (int u = 0; u < n; ++u) {
    double node = 0.0;
    double rmax = 0.0;
    for (const auto& s : o.antennas(u)) {
      const double aperture = std::max(s.width, model.min_aperture);
      node += aperture / kTwoPi *
              std::pow(s.radius, model.path_loss_exponent);
      rmax = std::max(rmax, s.radius);
    }
    rep.total += node;
    rep.max_per_node = std::max(rep.max_per_node, node);
    rep.omni_total += std::pow(rmax, model.path_loss_exponent);
  }
  rep.mean_per_node = rep.total / n;
  rep.saving_factor = rep.total > 0.0 ? rep.omni_total / rep.total : 0.0;
  return rep;
}

}  // namespace dirant::sim
