#pragma once
/// \file energy.hpp
/// Energy model for beam-forming sensors, after the power-consumption
/// literature the paper cites ([9], [11]): a sector of spread alpha and
/// range r costs  (alpha / 2*pi) * r^beta  (beta the path-loss exponent,
/// typically 2).  Zero-spread beams are charged a configurable minimum
/// aperture so they are not free.

#include <span>

#include "antenna/orientation.hpp"

namespace dirant::sim {

struct EnergyModel {
  double path_loss_exponent = 2.0;  ///< beta
  double min_aperture = 0.05;       ///< radians charged for a 0-width beam
};

struct EnergyReport {
  double total = 0.0;
  double max_per_node = 0.0;
  double mean_per_node = 0.0;
  /// Energy of an omnidirectional deployment with each node's max radius.
  double omni_total = 0.0;
  double saving_factor = 0.0;  ///< omni_total / total (>= 1 is good)
};

EnergyReport energy_report(const antenna::Orientation& o,
                           const EnergyModel& model = {});

/// Per-transmission energy of node `u`: the same per-sector term
/// `energy_report` charges —  sum over u's sectors of
/// (max(width, min_aperture) / 2*pi) * radius^beta.  The traffic engine
/// bills this per forwarded packet.
double node_transmit_energy(const antenna::Orientation& o, int u,
                            const EnergyModel& model = {});

/// Battery drain primitive: subtract `cost` from `charge`, clamping at
/// zero — a charge never goes negative, no matter how large the cost.
/// Returns the energy actually drained (== cost unless the battery
/// emptied first).  Non-positive costs drain nothing.
double drain_battery(double& charge, double cost);

}  // namespace dirant::sim
