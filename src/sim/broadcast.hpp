#pragma once
/// \file broadcast.hpp
/// Network-level consequences of an orientation: synchronous flooding over
/// the induced transmission digraph.  This is the "ad hoc network" view the
/// paper's introduction motivates — once the antennae are oriented, who can
/// talk to whom, and at what hop cost compared to an omnidirectional
/// deployment of the same range?

#include <cstdint>
#include <span>
#include <vector>

#include "antenna/orientation.hpp"
#include "graph/digraph.hpp"
#include "graph/traversal.hpp"

namespace dirant::sim {

/// Result of flooding one message from `source` (one hop per round).
struct BroadcastResult {
  int rounds = 0;             ///< rounds until no new node is reached
  int reached = 0;            ///< nodes that ever got the message
  double delivery_ratio = 0;  ///< reached / n
  double mean_hops = 0.0;     ///< mean hop distance over reached nodes
  /// Forwarding transmissions: every reached node with at least one
  /// out-edge rebroadcasts exactly once.  Sinks (out-degree 0) receive but
  /// never transmit, so transmissions <= reached always holds.
  long long transmissions = 0;
};

/// Flood from `source` over a prebuilt digraph.  Runs over the
/// thread-local AuditSession (sim/audit.hpp), so repeated calls reuse the
/// session's distance buffers; audits that want explicit buffer ownership
/// use the session directly or the scratch-taking overload below.
BroadcastResult flood(const graph::Digraph& g, int source);

/// Scratch-reusing primitive: `dist` and `scratch` are working memory only
/// (overwritten); loops flooding from many sources allocate nothing.
BroadcastResult flood(const graph::Digraph& g, int source,
                      std::vector<int>& dist, graph::BfsScratch& scratch);

/// Directional-vs-omni hop stretch: mean and max over sampled source pairs
/// of (directional hop distance) / (omni hop distance).
struct StretchResult {
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
  int sampled_pairs = 0;
};

StretchResult hop_stretch(const graph::Digraph& directional,
                          const graph::Digraph& omni, int sample_sources = 8);

/// Strong c-connectivity audit (the paper's open problem, §5): the largest
/// c such that the digraph stays strongly connected after deleting any
/// tested set of fewer than c vertices.  Exhaustive for c <= 2, sampled
/// above; returns the certified level (1 = strongly connected, 2 = survives
/// every single-vertex deletion, ...).  One transpose per audit; every
/// deletion probe reuses it through the thread-local AuditSession.
int strong_connectivity_level(const graph::Digraph& g, int max_level = 3);

/// Monte-Carlo failure study: delete a uniformly random `fraction` of the
/// sensors and measure how much of the survivor set stays mutually
/// reachable (largest SCC / survivors).
struct FailureStats {
  double mean_largest_scc = 0.0;  ///< fraction of survivors, averaged
  double worst_largest_scc = 1.0;
  int trials = 0;
};
FailureStats failure_resilience(const graph::Digraph& g, double fraction,
                                int trials, std::uint64_t seed);

}  // namespace dirant::sim
