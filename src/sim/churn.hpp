#pragma once
/// \file churn.hpp
/// ChurnEngine — deterministic fault injection plus incremental
/// recertification for long-lived planning sessions.
///
/// The paper plans a network once; this engine keeps a plan *certified*
/// while the network churns.  It owns the original point set with an alive
/// mask, applies batches of fail / recover / move events, and after every
/// batch produces an orientation, a certified transmission digraph, and a
/// core::Certificate that are **bit-identical to a from-scratch
/// `PlanSession::orient()` + `certify()` over the surviving points at every
/// thread count** (tests/test_churn.cpp) — while doing much less work on
/// the common path:
///
///   * EMST: a maintained Delaunay-superset candidate pool
///     (mst::DelaunayEdgePool) feeds Kruskal directly, skipping the
///     triangulation.  Exact by the unique-MST argument (mst/repair.hpp);
///     escalates to the full `orient()` pipeline when the pool degrades
///     (and reseeds it from the fresh triangulation's candidate edges,
///     gated on mst::EmstScratch::last_kind).
///   * Digraph: per-row patching of the previous certified CSR.  A node
///     whose sectors are unchanged (antenna::Orientation::node_equals
///     against the engine's snapshot) and which did not move keeps its row
///     — dead targets dropped, moved/recovered targets retested with
///     antenna::sector_accepts — while dirty rows rebuild from a grid
///     query.  Row edge *sets* equal the fresh builder's by induction, so
///     the SCC count (a graph property) and hence the certificate match
///     exactly.  Escalates to the sharded full rebuild when the dirty
///     fraction crosses `ChurnOptions::dirty_threshold`.
///   * Certificate: the SCC count (serial Tarjan, or the parallel FW–BW
///     engine when `set_threads(t > 1)`) plugs into
///     core::make_certificate — the same arithmetic `certify` runs.
///
/// Graceful degradation: before re-planning, each step audits the **frozen
/// survivor graph** — the previous certified digraph restricted to stable
/// nodes (alive in both batches, not moved) — answering "what does the
/// field look like right now, before new orientations are pushed?".
/// Moved/recovered nodes are conservatively stranded until the re-plan
/// re-aims them.  Certification failure mid-churn never throws: the
/// DegradedReport carries the largest-SCC coverage fraction, the stranded
/// list, the k-level achieved (optional deletion probes), and the dirty
/// node set doubles as the suggested repair re-orientation.
///
/// Determinism: event application, pool maintenance, escalation decisions,
/// the dirty diff, and the frozen audit are all serial functions of the
/// (seeded) event sequence; the thread-sensitive stages (sharded CSR build,
/// parallel SCC) carry their own bit-identity contracts — so the whole
/// StepReport is bit-identical at every thread count, under asan and tsan.
///
/// Reuse contract: construct once, `init` once, then `step` forever.  From
/// the second step on, a steady-state batch (stable alive count) performs
/// zero heap allocations on both the incremental and the escalated path
/// (tests/test_session_alloc.cpp, WarmChurnLoopIsAllocationFree).  Batches
/// that shrink and regrow the alive set may touch the per-node output
/// arena (vector-of-vectors resize), like every session in this library.
/// Not thread-safe; the engine parallelizes internally via `set_threads`.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "antenna/orientation.hpp"
#include "core/session.hpp"
#include "core/two_antennae.hpp"
#include "core/validate.hpp"
#include "geometry/point.hpp"
#include "graph/digraph.hpp"
#include "graph/recert.hpp"
#include "graph/scc.hpp"
#include "mst/repair.hpp"
#include "mst/tree.hpp"

namespace dirant::par {
class ThreadPool;
}

namespace dirant::sim {

enum class ChurnEventKind {
  kFail,     ///< alive node goes dark (deleted from the alive set)
  kRecover,  ///< dead node rejoins at its last known position
  kMove,     ///< alive node relocates to `to`
};

const char* to_string(ChurnEventKind k);

/// One churn event addressed by *original* index (the init() point order);
/// indices are stable across the whole session regardless of churn.
struct ChurnEvent {
  ChurnEventKind kind = ChurnEventKind::kFail;
  int node = -1;
  geom::Point to{};  ///< kMove destination (ignored otherwise)
};

/// Event log entry: `applied == false` means the event was rejected
/// (failing a dead node, recovering an alive one, moving a dead one, or a
/// fail that would drop the alive count below ChurnOptions::min_alive) and
/// the state is unchanged.  Rejections are deterministic, so logs replay.
struct AppliedEvent {
  ChurnEvent event{};
  bool applied = false;
};

struct ChurnOptions {
  /// Dirty-sector fraction above which the digraph patch path escalates to
  /// the full (sharded) rebuild.
  double dirty_threshold = 0.25;
  /// Probe the frozen survivor graph's deletion-robustness level (0 =
  /// disconnected, 1 = strongly connected, 2 = survives every single-node
  /// deletion).  n reachability probes per step — off by default.
  bool probe_k_level = false;
  /// Disable both incremental paths (baseline / bench denominator).
  bool force_full = false;
  /// Fail events that would leave fewer than this many alive nodes are
  /// rejected (the engine always has a plannable point set).
  int min_alive = 3;
};

/// Pre-repair field state (see file comment).  `coverage_fraction` is the
/// largest strongly connected component of the frozen survivor graph over
/// the alive count; `stranded` lists the alive original ids outside it.
struct DegradedReport {
  bool degraded = false;  ///< coverage_fraction < 1
  double coverage_fraction = 1.0;
  int largest_scc = 0;  ///< vertex count of the largest surviving SCC
  int k_level = -1;     ///< -1 = not probed (ChurnOptions::probe_k_level)
  std::vector<int> stranded;
};

/// Everything one step produced.  Returned by const reference into
/// engine-owned storage — valid until the next `step`/`init`; copy out to
/// keep.  Every field is bit-identical at every thread count.
struct StepReport {
  int batch = 0;  ///< 0 = the init() full plan
  int alive = 0;
  std::vector<AppliedEvent> events;  ///< in input order
  DegradedReport degraded;           ///< pre-repair audit
  /// Alive original ids whose sectors changed in the re-plan (or which
  /// moved/recovered): the orientations to push to the field — the
  /// "suggested repair re-orientation".
  std::vector<int> suggested_repair;
  double dirty_fraction = 0.0;
  bool incremental_plan = false;     ///< pool-Kruskal path (vs full orient)
  bool incremental_digraph = false;  ///< row-patch path (vs full rebuild)
  /// Localized MST repair carried the tree across this batch (the pool
  /// Kruskal was skipped entirely).  Implies `incremental_plan`.
  bool localized_mst = false;
  /// Why the localized repair was skipped or abandoned this batch
  /// (nullptr = it ran, or the step escalated before reaching it):
  /// "mst-unseeded", "mst-region", "mst-candidates", "mst-walk-budget",
  /// "mst-disconnected", "mst-count", "mst-degree".  All reasons are pure
  /// functions of the event sequence — deterministic across thread counts.
  const char* mst_fallback = nullptr;
  /// Affected-region size of the localized repair (nodes the repair
  /// touched); 0 when `localized_mst` is false.
  int mst_region = 0;
  /// The dirty-subtree orienter ran: only `orient_planned` vertices
  /// re-planned, every other sector row was copied from the snapshot.
  bool incremental_orient = false;
  int orient_planned = 0;
  /// The plan came from the warm frontier orienter — the recorded tree was
  /// patched with the batch's net MST edge delta and only the affected
  /// region re-planned (sub-linear), instead of the full O(n) dirty-subtree
  /// traversal.  Implies `incremental_orient`.
  bool warm_orient = false;
  /// The strong-connectivity certificate was revalidated from the dirty
  /// frontier against the cached spanning in/out trees — no SCC pass ran.
  bool cert_reused = false;
  /// Why the plan escalated (nullptr = it didn't): "forced",
  /// "pool-invalid", "below-prim-cutoff", "pool-oversized",
  /// "pool-disconnected".
  const char* escalation = nullptr;
  /// Post-repair certificate over the surviving set — bit-identical to
  /// `PlanSession::certify` on a fresh session at the same thread count.
  core::Certificate certificate{};
};

class ChurnEngine {
 public:
  ChurnEngine();
  ~ChurnEngine();
  ChurnEngine(const ChurnEngine&) = delete;
  ChurnEngine& operator=(const ChurnEngine&) = delete;

  /// Full plan + certification over `pts` (all alive); seeds the candidate
  /// pool and the certified digraph.  Returns the batch-0 report.
  const StepReport& init(std::span<const geom::Point> pts,
                         const core::ProblemSpec& spec,
                         const ChurnOptions& opts = {});

  /// Apply one event batch, audit, re-plan, re-certify.  Never throws on
  /// degraded connectivity — that is what the report's DegradedReport is
  /// for.  See the file comment for the path selection rules.
  const StepReport& step(std::span<const ChurnEvent> events);

  /// Parallelism for the full digraph rebuild and the SCC pass.  Results
  /// never change (both stages carry bit-identity contracts); wall clock
  /// does.  The serial default keeps the zero-allocation steady state.
  void set_threads(int threads);
  int threads() const { return threads_; }

  int size() const { return n_orig_; }
  int alive_count() const { return alive_count_; }
  const std::vector<char>& alive() const { return alive_; }
  /// Current positions in original index space (dead nodes keep their last
  /// position and rejoin there on kRecover unless moved first).
  const std::vector<geom::Point>& positions() const { return positions_; }
  /// Compact (surviving) index -> original id, ascending.
  const std::vector<int>& compact_to_orig() const { return orig_of_; }
  /// The last re-plan's Result (compact space) — lives in the inner
  /// PlanSession arena.
  const core::Result& last_result() const { return session_.last_result(); }
  /// The certified transmission digraph of the last step (compact space).
  /// Bind an AuditSession to it (`AuditSession::bind`) to run the full
  /// metric sweep without a rebuild.
  const graph::Digraph& certified_digraph() const { return dg_; }
  const StepReport& last_report() const { return report_; }
  core::PlanSession& plan_session() { return session_; }

  /// Deterministic Poisson-thinned schedule: every alive node fails with
  /// probability `fail_rate` (else moves with `move_rate`, displaced
  /// uniformly in a `move_radius` box), every dead node recovers with
  /// `recover_rate`; all draws come from per-(seed, batch_tag, node)
  /// splitmix64 streams, so the schedule depends only on the arguments and
  /// the current alive mask.  Appends to `out`.
  void poisson_schedule(std::uint64_t seed, int batch_tag, double fail_rate,
                        double recover_rate, double move_rate,
                        double move_radius, std::vector<ChurnEvent>& out) const;

  /// Adversarial "kill the articulation set": fail the `count` alive nodes
  /// of highest degree in the last plan's spanning tree (ties by smaller
  /// id) — the tree's internal nodes are exactly its articulation points.
  void adversarial_schedule(int count, std::vector<ChurnEvent>& out) const;

 private:
  void rebuild_compact();
  void audit_frozen();
  void replan();
  void derive_mst_events();
  int certify_sccs();
  void compute_dirty();
  void build_digraph();
  void reseed_pool();
  void refresh_tree_degrees();
  void snapshot_orientation();

  core::PlanSession session_;  ///< always serial inside (determinism anchor)
  core::ProblemSpec spec_{};
  ChurnOptions opts_{};
  int threads_ = 1;
  std::unique_ptr<par::ThreadPool> pool_;

  // Original-space state.
  int n_orig_ = 0;
  std::vector<geom::Point> positions_;
  std::vector<char> alive_;
  int alive_count_ = 0;
  std::vector<char> moved_;      ///< this batch
  std::vector<char> recovered_;  ///< this batch
  std::vector<char> changed_pos_;  ///< moved_ | recovered_ (orienter input)
  std::vector<int> event_nodes_; ///< alive & (moved|recovered), ascending
  std::vector<int> batch_dead_;  ///< fails applied this batch, ascending
  std::vector<int> pending_fails_;  ///< buffered pool erases (batched scan)
  std::vector<char> dirty_;      ///< sectors changed in the last re-plan

  // Compact maps (current and previous batch).
  std::vector<int> comp_of_, orig_of_;
  std::vector<int> prev_comp_of_, prev_orig_of_;
  std::vector<geom::Point> compact_pts_;

  // Incremental plan.
  mst::DelaunayEdgePool pool_edges_;
  std::vector<std::pair<int, int>> cand_compact_;
  mst::Tree inc_tree_;
  std::vector<int> tree_degree_;  ///< orig space, adversarial generator

  // Sub-linear warm path: the maintained EMST (layer 1), the dirty-subtree
  // orienter's plan memory (layer 2), and the frontier recertifier's
  // spanning in/out trees (layer 3).
  mst::LocalMstRepair repair_;
  core::TwoAntennaeMemory orient_mem_;
  std::vector<int> mst_removed_, mst_inserted_;
  graph::IncrementalSccCert recert_;
  std::vector<int> suspects_;  ///< dirty ∪ this-batch dead, orig ascending
  double patch_qr_ = 0.0;      ///< grid query radius of the last row patch

  antenna::Orientation prev_o_{0};  ///< orig-space sector snapshot

  // Certified digraph + certification scratch.  The three CSR buffer pairs
  // (dg_'s own, the transmission scratch's, the patch pair) circulate
  // through Digraph adopt/release, so warm steady-state rebuilds of either
  // flavour allocate nothing.
  graph::Digraph dg_;
  core::CertifyScratch cx_;
  std::vector<int> patch_offsets_, patch_targets_;

  // Frozen-survivor audit scratch.
  std::vector<int> frozen_offsets_, frozen_targets_;
  graph::SccResult scc_result_;
  std::vector<int> scc_sizes_;
  graph::Digraph transpose_;
  graph::ReachScratch reach_;
  std::vector<char> probe_removed_;

  StepReport report_;
  int batch_ = 0;
  bool inited_ = false;
};

}  // namespace dirant::sim
