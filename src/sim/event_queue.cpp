#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace dirant::sim {

namespace {

/// Min-heap order on (tick, seq) — the same strict total order the wheel
/// realises structurally.
constexpr auto heap_later = [](const auto& a, const auto& b) {
  return a.tick != b.tick ? a.tick > b.tick : a.seq > b.seq;
};

/// Index of the first set bit at position >= `from` in a kWords-word
/// bitmap, or -1.
template <int Words>
int find_ge(const std::uint64_t (&w)[Words], int from) {
  if (from >= Words * 64) return -1;
  int word = from >> 6;
  std::uint64_t bits = w[word] & (~0ull << (from & 63));
  for (;;) {
    if (bits != 0) return (word << 6) + std::countr_zero(bits);
    if (++word == Words) return -1;
    bits = w[word];
  }
}

}  // namespace

const char* to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kTimingWheel:
      return "wheel";
    case QueueKind::kBinaryHeap:
      return "heap";
  }
  return "?";
}

void EventQueue::reset(QueueKind kind) {
  for (std::vector<Packed>& b : buckets_) b.clear();
  std::memset(occ_, 0, sizeof occ_);
  heap_.clear();
  cur_ = 0;
  head_ = 0;
  size_ = 0;
  seq_ = 0;
  cascaded_ = 0;
  parked_ = 0;
  kind_ = kind;
}

void EventQueue::park(std::uint64_t tick, std::uint32_t data,
                      std::uint32_t aux) {
  heap_.push_back(HeapEntry{tick, seq_++, data, aux});
  std::push_heap(heap_.begin(), heap_.end(), heap_later);
  ++parked_;
}

// Pops every parked event belonging to the top-level window that starts at
// the (window-aligned) cursor back into the wheels.  Heap order is
// (tick, seq), so same-tick events re-enter their bucket in seq order —
// and the wheels hold nothing for this window yet, so FIFO is preserved.
void EventQueue::drain_overflow() {
  const std::uint64_t end = cur_ + (1ull << kSpanBits);
  while (!heap_.empty() && heap_.front().tick < end) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_later);
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    place(e.tick, e.data, e.aux);
  }
}

// Redistributes the upper-level slot the cursor just entered.  Every event
// re-places on a strictly lower level (its level-`level` window now
// contains the cursor), into buckets that are empty until this window is
// current — a stable scan, never a merge.
void EventQueue::cascade(int level) {
  const int slot = static_cast<int>((cur_ >> (level * kBits)) & kMask);
  std::vector<Packed>& b =
      buckets_[static_cast<size_t>(level * kSlots + slot)];
  if (b.empty()) return;
  cascaded_ += b.size();
  for (const Packed& p : b) place(p.tick, p.data, p.aux);
  b.clear();
  occ_[level][slot >> 6] &= ~(1ull << (slot & 63));
}

// Moves the cursor to the next occupied tick.  Precondition: size_ > 0 and
// the cursor's bucket is empty.  Empty level-0 windows are skipped via the
// occupancy bitmaps; when the wheels are drained entirely the cursor jumps
// straight to the overflow's top-level window, so far-future timers cost
// O(overflow), not O(tick gap).
void EventQueue::advance() {
  // The cursor's own slot was just drained; slot 0 of a freshly entered
  // window has NOT been examined, so `from` resets to 0 whenever the
  // cursor moves to a window start below.
  int from = static_cast<int>(cur_ & kMask) + 1;
  for (;;) {
    if (size_ == heap_.size()) {
      // Everything pending is parked beyond the current top-level window.
      DIRANT_ASSERT(!heap_.empty());
      cur_ = heap_.front().tick & ~((1ull << kSpanBits) - 1);
      drain_overflow();
      from = 0;
      continue;
    }
    if (const int s = find_ge(occ_[0], from); s >= 0) {
      cur_ = (cur_ & ~kMask) | static_cast<std::uint64_t>(s);
      return;
    }
    // Level-0 window exhausted: cross the boundary and cascade downward,
    // highest wrapped level first.
    cur_ = (cur_ | kMask) + 1;
    if (((cur_ >> kBits) & kMask) == 0) {
      if (((cur_ >> (2 * kBits)) & kMask) == 0) drain_overflow();
      cascade(2);
    }
    cascade(1);
    from = 0;
  }
}

void EventQueue::push_heap_mode(std::uint64_t tick, std::uint32_t data,
                                std::uint32_t aux) {
  DIRANT_ASSERT(tick >= cur_);
  heap_.push_back(HeapEntry{tick, seq_++, data, aux});
  std::push_heap(heap_.begin(), heap_.end(), heap_later);
}

EventQueue::Item EventQueue::pop_heap_mode() {
  std::pop_heap(heap_.begin(), heap_.end(), heap_later);
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  --size_;
  cur_ = e.tick;
  return Item{e.tick, e.data, e.aux};
}

}  // namespace dirant::sim
