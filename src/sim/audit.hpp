#pragma once
/// \file audit.hpp
/// AuditSession — the reusable network-analysis core.  One session owns the
/// transmission digraph, its cached transpose, and every piece of metric
/// working memory (BFS distance buffers, SCC scratch — serial Tarjan and
/// the parallel FW–BW engine —, deletion-probe masks, the per-trial
/// survivor-subgraph CSR arrays), so a warm session streams the whole
/// metric set — flooding, hop stretch, k-level strong connectivity,
/// failure resilience, routing stats, energy — off ONE digraph build and
/// ONE transpose with zero steady-state heap allocations (enforced by
/// tests/test_session_alloc.cpp, SecondAuditIsAllocationFree).  This
/// extends to the analysis stack the discipline core::PlanSession
/// established for planning: the Monte-Carlo connectivity audits the
/// related work treats as the primary experiment (Damian–Flatland 2010,
/// Georgiou–Nguyen 2015) rebuild nothing per trial.
///
/// Lifecycle / reuse contract (mirrors core::PlanSession):
///   * Construct once per worker, not per call; the first audit sizes every
///     buffer, subsequent same-size audits are allocation-free at every
///     thread count — pooled fan-outs go through ThreadPool::run_job (a
///     fixed slot, no task closures) and the per-chunk AuditWorker scratch
///     is session-owned and recycled.
///   * `bind(g)` points the session at a caller-owned digraph (non-owning;
///     the caller keeps `g` alive and unchanged while bound).  `load(...)`
///     builds the induced transmission digraph into session storage and
///     binds it; `load_omni(...)` builds the omnidirectional reference.
///     Either invalidates the cached transpose, which rebuilds lazily.
///   * Sessions are NOT thread-safe; share nothing, or one per thread.
///     The free functions sim::flood / hop_stretch /
///     strong_connectivity_level / failure_resilience / routing_stats run
///     over a thread-local session (the core::orient pattern) — one-shot
///     ergonomics, warm-session cost.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "antenna/orientation.hpp"
#include "antenna/transmission.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "graph/scc_parallel.hpp"
#include "graph/traversal.hpp"
#include "sim/broadcast.hpp"
#include "sim/energy.hpp"
#include "sim/routing.hpp"

namespace dirant::par {
class ThreadPool;
}

namespace dirant::sim {

/// Knobs for `AuditSession::full_report`.
struct AuditOptions {
  int flood_sources = 4;        ///< evenly spaced flood sample sources
  int stretch_sources = 8;      ///< hop-stretch sample sources
  int max_connectivity_level = 2;  ///< deletion-probe depth (2 = single)
  double failure_fraction = 0.1;   ///< Monte-Carlo deletion fraction
  int failure_trials = 20;
  int routing_samples = 200;
  std::uint64_t seed = 1;
  EnergyModel energy{};
};

/// Flood metrics aggregated over the sampled sources.
struct FloodSummary {
  int sources = 0;
  double mean_rounds = 0.0;
  double mean_hops = 0.0;
  double mean_transmissions = 0.0;
  double min_delivery = 1.0;  ///< worst delivery ratio over the sources
};

/// Everything the analysis layer can say about one orientation, off one
/// digraph build + one transpose.
struct FullReport {
  bool strongly_connected = false;
  int scc_count = 0;
  FloodSummary flood;
  StretchResult stretch;
  int connectivity_level = 0;
  FailureStats failure;
  RoutingStats routing;
  EnergyReport energy;
};

class AuditSession {
 public:
  // Out of line: the owned ThreadPool is an incomplete type here.
  AuditSession();
  ~AuditSession();
  AuditSession(const AuditSession&) = delete;
  AuditSession& operator=(const AuditSession&) = delete;

  /// Bind to a caller-owned digraph (non-owning view).  Invalidates the
  /// cached transpose; metric calls then audit `g`.  The caller keeps `g`
  /// alive while bound — `unbind()` drops the view when that lifetime
  /// ends (the free-function wrappers do this so a temporary digraph never
  /// leaves a dangling binding behind).
  void bind(const graph::Digraph& g);

  /// Drop the bound view; metric calls contract-fail until the next
  /// bind/load.
  void unbind();

  /// Build the induced transmission digraph (antenna layer) into session
  /// storage — CSR buffers and grid index recycled across loads, sharded
  /// over the session pool when `threads() > 1` — and bind it.
  const graph::Digraph& load(std::span<const geom::Point> pts,
                             const antenna::Orientation& o);

  /// Build the omnidirectional reference digraph (edge iff distance <=
  /// radius) into session storage.  Does NOT rebind: the directional
  /// digraph stays the audit subject; pass the returned reference to
  /// `hop_stretch`.
  const graph::Digraph& load_omni(std::span<const geom::Point> pts,
                                  double radius);

  /// The bound digraph (contract violation when nothing is bound).
  const graph::Digraph& digraph() const;

  /// The bound digraph's transpose, built on first use and cached until
  /// the next bind/load.
  const graph::Digraph& transpose();

  /// Strong connectivity via forward+backward reachability over the cached
  /// transpose (allocation-free warm).
  bool strongly_connected();

  /// SCC count: serial Tarjan, or the parallel FW–BW engine over the
  /// session pool when `set_threads(t > 1)` — identical counts either way.
  int scc_count();

  BroadcastResult flood(int source);
  StretchResult hop_stretch(const graph::Digraph& omni,
                            int sample_sources = 8);

  /// Deletion-probe connectivity depth.  The level-2 pass (n single-vertex
  /// deletion probes, 2 BFS each) fans out over the session pool when
  /// `threads() > 1`: contiguous probe chunks with per-chunk
  /// ReachScratch + deletion mask, all sharing the one cached transpose.
  /// The level is an AND over probe outcomes — order-independent — so the
  /// result is identical at every thread count.
  int strong_connectivity_level(int max_level = 3);

  /// Monte-Carlo random-failure resilience.  Each trial draws its
  /// deletions from an independent RNG stream seeded deterministically
  /// from (seed, trial index), so trial t sees the same failures no matter
  /// which worker runs it or whether the loop is serial — the report is
  /// bit-identical at every thread count (per-trial fractions are recorded
  /// by index and reduced in trial order).  `threads() > 1` fans trials
  /// out over the session pool with per-chunk subgraph CSR scratch.
  /// `fraction` is clamped to [0, 1]: <= 0 deletes nothing (mean and worst
  /// read 1.0 on a connected graph), >= 1 deletes everything the
  /// one-survivor guard allows — no out-of-range input changes the RNG
  /// stream or trips UB.
  FailureStats failure_resilience(double fraction, int trials,
                                  std::uint64_t seed);
  RoutingStats routing_stats(std::span<const geom::Point> pts, int samples,
                             std::uint64_t seed);

  /// The one-call audit: loads the induced digraph (and the omni reference
  /// at the orientation's max radius), then runs the full metric set off
  /// that single build.  Deterministic for a fixed (pts, o, opts).
  FullReport full_report(std::span<const geom::Point> pts,
                         const antenna::Orientation& o,
                         const AuditOptions& opts = {});

  /// Audit parallelism knob (same contract as PlanSession::set_threads):
  /// `threads <= 1` keeps every path serial and allocation-free;
  /// `threads > 1` spawns a session-owned pool, shards `load`'s digraph
  /// build, and routes SCC passes through the parallel engine.  Results
  /// never change — only wall clock.
  void set_threads(int threads);
  int threads() const { return threads_; }

 private:
  const graph::Digraph* bound_ = nullptr;
  graph::Digraph own_;    ///< storage behind load()
  graph::Digraph omni_;   ///< storage behind load_omni()
  graph::Digraph transpose_;
  bool transpose_valid_ = false;

  antenna::TransmissionScratch tx_;       ///< induced-digraph build buffers
  antenna::TransmissionScratch omni_tx_;  ///< omni build buffers
  graph::BfsScratch bfs_;
  std::vector<int> dist_, dist_omni_;  ///< BFS distance buffers
  graph::ReachScratch reach_;          ///< deletion-probe reachability
  std::vector<char> removed_;          ///< deletion mask
  graph::SccScratch scc_;              ///< serial Tarjan scratch
  graph::SccResult scc_result_;
  graph::ParSccScratch par_scc_;       ///< parallel FW–BW scratch
  // Failure-resilience per-trial buffers (survivor subgraph CSR recycled
  // through Digraph::release) — the serial (threads <= 1) path.
  std::vector<int> remap_, sub_offsets_, sub_targets_, sizes_;

  /// Per-chunk working memory for the pooled audit fan-outs (deletion
  /// probes, failure trials): one entry per reduction chunk (= the session
  /// thread count), each with its own reachability scratch, deletion mask,
  /// Tarjan scratch and survivor-subgraph CSR arrays.  Warm after the
  /// first pooled audit, so repeated pooled sweeps allocate nothing.
  struct AuditWorker {
    graph::ReachScratch reach;
    std::vector<char> removed;
    graph::SccScratch scc;
    graph::SccResult scc_result;
    std::vector<int> remap, sub_offsets, sub_targets, sizes;
  };
  std::vector<AuditWorker> audit_workers_;
  std::vector<double> trial_frac_;  ///< per-trial largest-SCC fraction

  int threads_ = 1;
  std::unique_ptr<par::ThreadPool> pool_;
};

namespace detail {
/// The thread-local session behind the free-function forms.  Note the
/// usual thread_local caveat: buffers persist for the thread's lifetime,
/// sized to the largest instance audited on that thread.
AuditSession& tls_audit_session();

/// RAII binder for the thread-local session: binds on construction and
/// always unbinds on scope exit — even when a metric throws a contract
/// violation — so the session can never retain a dangling view of a
/// caller's temporary digraph.
class TlsBinding {
 public:
  explicit TlsBinding(const graph::Digraph& g)
      : session_(tls_audit_session()) {
    session_.bind(g);
  }
  ~TlsBinding() { session_.unbind(); }
  TlsBinding(const TlsBinding&) = delete;
  TlsBinding& operator=(const TlsBinding&) = delete;
  AuditSession* operator->() { return &session_; }

 private:
  AuditSession& session_;
};
}  // namespace detail

}  // namespace dirant::sim
