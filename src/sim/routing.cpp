#include "sim/routing.hpp"

#include "common/assert.hpp"
#include "sim/audit.hpp"

namespace dirant::sim {

using geom::Point;

RouteResult greedy_route(const graph::Digraph& g, std::span<const Point> pts,
                         int src, int dst, int ttl) {
  const int n = g.size();
  DIRANT_ASSERT(src >= 0 && src < n && dst >= 0 && dst < n);
  if (ttl < 0) ttl = 4 * n;
  RouteResult r;
  int cur = src;
  while (r.hops <= ttl) {
    if (cur == dst) {
      r.delivered = true;
      return r;
    }
    // Strictly-decreasing greedy step.
    int next = -1;
    double cur_d = geom::dist2(pts[cur], pts[dst]);
    double best = cur_d;
    for (int v : g.out(cur)) {
      const double d = geom::dist2(pts[v], pts[dst]);
      if (d < best) {
        best = d;
        next = v;
      }
    }
    if (next == -1) return r;  // routing void
    cur = next;
    ++r.hops;
  }
  return r;  // TTL expired
}

RoutingStats routing_stats(const graph::Digraph& g, std::span<const Point> pts,
                           int samples, std::uint64_t seed) {
  // Thin wrapper over the thread-local AuditSession, which owns the
  // per-sample BFS buffers (the core::orient pattern).  The RAII binding
  // unbinds on exit: `g` may be a temporary.
  detail::TlsBinding session(g);
  return session->routing_stats(pts, samples, seed);
}

}  // namespace dirant::sim
