#include "sim/routing.hpp"

#include <random>

#include "common/assert.hpp"
#include "graph/traversal.hpp"

namespace dirant::sim {

using geom::Point;

RouteResult greedy_route(const graph::Digraph& g, std::span<const Point> pts,
                         int src, int dst, int ttl) {
  const int n = g.size();
  DIRANT_ASSERT(src >= 0 && src < n && dst >= 0 && dst < n);
  if (ttl < 0) ttl = 4 * n;
  RouteResult r;
  int cur = src;
  while (r.hops <= ttl) {
    if (cur == dst) {
      r.delivered = true;
      return r;
    }
    // Strictly-decreasing greedy step.
    int next = -1;
    double cur_d = geom::dist2(pts[cur], pts[dst]);
    double best = cur_d;
    for (int v : g.out(cur)) {
      const double d = geom::dist2(pts[v], pts[dst]);
      if (d < best) {
        best = d;
        next = v;
      }
    }
    if (next == -1) return r;  // routing void
    cur = next;
    ++r.hops;
  }
  return r;  // TTL expired
}

RoutingStats routing_stats(const graph::Digraph& g, std::span<const Point> pts,
                           int samples, std::uint64_t seed) {
  RoutingStats st;
  const int n = g.size();
  if (n < 2) return st;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  long long hops = 0;
  double stretch = 0.0;
  int delivered = 0, stretch_count = 0;
  std::vector<int> d;  // per-sample BFS distances, capacity reused
  graph::BfsScratch scratch;
  for (int i = 0; i < samples; ++i) {
    int s = pick(rng), t = pick(rng);
    while (t == s) t = pick(rng);
    const auto r = greedy_route(g, pts, s, t);
    ++st.attempted;
    if (!r.delivered) continue;
    ++delivered;
    hops += r.hops;
    graph::bfs_distances(g, s, d, scratch);
    if (d[t] > 0) {
      stretch += static_cast<double>(r.hops) / d[t];
      ++stretch_count;
    }
  }
  st.delivery_rate =
      st.attempted > 0 ? static_cast<double>(delivered) / st.attempted : 0.0;
  st.mean_hops = delivered > 0 ? static_cast<double>(hops) / delivered : 0.0;
  st.mean_stretch = stretch_count > 0 ? stretch / stretch_count : 0.0;
  return st;
}

}  // namespace dirant::sim
