#pragma once
/// \file event_queue.hpp
/// EventQueue — the discrete-event core of sim::TrafficEngine: a
/// hierarchical timing wheel with the classic binary heap retained behind
/// the same interface as the correctness oracle (`QueueKind::kBinaryHeap`,
/// the same pattern as the classifier's `kScalar`).
///
/// The queue delivers events in strictly increasing `(tick, push-order)`
/// order — the FIFO tie-break that makes the TrafficEngine's run a pure
/// function of (topology, schedule, seed).  The binary heap realises that
/// order with an explicit per-event sequence number and O(log m)
/// comparisons per push/pop; the timing wheel realises it *structurally*
/// in O(1) amortized per event, with no comparator on the hot path at all:
///
///   * **Level-0 buckets are single ticks.**  Level j has 256 slots of
///     256^j ticks each, and an event lands on the lowest level whose
///     *aligned* window contains both the event and the cursor — so a
///     level-0 slot only ever holds events of exactly one tick, appended
///     in push order.  Dequeue is a straight FIFO scan of the cursor's
///     bucket: the `(tick, seq)` order falls out of the structure.
///   * **Seq-stable cascades.**  When the cursor crosses a window
///     boundary, the next upper-level slot is redistributed downward by a
///     linear scan in storage order.  Appends during distribution preserve
///     relative order, and the aligned-window placement rule guarantees
///     every destination bucket is *empty* at cascade time (events for a
///     window can only reach lower levels once the window is current), so
///     no merge — and no comparison — is ever needed.
///   * **Far events park in an overflow heap.**  Ticks beyond the top
///     wheel window (2^24 ticks) keep their sequence number and wait in a
///     small `(tick, seq)` binary heap; they drain into the wheels, in
///     heap order, when the cursor enters their window.  Same-tick parked
///     events therefore re-enter in seq order, and by then every in-wheel
///     event of that window is gone — order is preserved end to end.
///   * **Recycled slabs.**  Buckets, bitmap words and the overflow heap
///     are engine-owned vectors that `reset()` clears without releasing,
///     so a warm run performs zero heap allocations once every bucket has
///     seen its peak occupancy (the `WarmRunIsAllocationFree` contract).
///
/// Occupancy bitmaps (one word per 64 slots) let the cursor skip empty
/// slots with `countr_zero` instead of stepping tick by tick; when the
/// wheels are empty the cursor jumps straight to the overflow's window, so
/// arbitrarily distant timers cost O(overflow) — not O(horizon).
///
/// The payload is two opaque 32-bit words (`data`, `aux`); the engine
/// packs its event kind + index into `data` and the packet generation into
/// `aux`.  In-wheel records are 16 bytes — half the footprint of the old
/// heap's 32-byte events — so a bucket scan is cache-dense.
/// `tests/test_event_queue.cpp` drives both kinds through adversarial
/// interleavings and asserts exact pop-order equality.
///
/// Not thread-safe; one queue per engine, same as the engine itself.

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace dirant::sim {

enum class QueueKind : std::uint8_t {
  kTimingWheel,  ///< hierarchical wheel, O(1) amortized, comparator-free
  kBinaryHeap,   ///< std::push_heap/pop_heap oracle, O(log m)
};

const char* to_string(QueueKind k);

class EventQueue {
 public:
  /// One dequeued event.  `data`/`aux` are returned exactly as pushed.
  struct Item {
    std::uint64_t tick = 0;
    std::uint32_t data = 0;
    std::uint32_t aux = 0;
  };

  EventQueue() { reset(QueueKind::kTimingWheel); }

  /// Empties the queue and rewinds the cursor to tick 0, keeping every
  /// bucket's capacity (the warm zero-alloc contract).  The overload picks
  /// the implementation for the next run; a mid-run kind switch is not a
  /// meaningful operation, so reconfiguring always resets.
  void reset() { reset(kind_); }
  void reset(QueueKind kind);

  QueueKind kind() const { return kind_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }

  /// Lower bound of poppable ticks: the wheel cursor, or the last popped
  /// tick in heap mode.  Pushing below it is a contract violation — a
  /// discrete-event loop never schedules into the past.
  std::uint64_t now() const { return cur_; }

  // Observability for tests and benches (cumulative since reset):
  /// events redistributed downward by wheel-wrap cascades.
  std::uint64_t cascaded() const { return cascaded_; }
  /// events parked in (and later drained from) the overflow heap.
  std::uint64_t parked() const { return parked_; }

  void push(std::uint64_t tick, std::uint32_t data, std::uint32_t aux) {
    ++size_;
    if (kind_ == QueueKind::kBinaryHeap) {
      push_heap_mode(tick, data, aux);
      return;
    }
    DIRANT_ASSERT(tick >= cur_);
    if ((tick >> kSpanBits) != (cur_ >> kSpanBits)) {
      park(tick, data, aux);
      return;
    }
    place(tick, data, aux);
  }

  /// Pops the strictly next event in `(tick, push-order)`.  Precondition:
  /// `!empty()`.
  Item pop() {
    DIRANT_ASSERT(size_ != 0);
    if (kind_ == QueueKind::kBinaryHeap) return pop_heap_mode();
    for (;;) {
      // The cursor's level-0 bucket holds events of exactly one tick in
      // push order; handlers may append same-tick events while it drains,
      // and the re-read of size() picks those up in order.
      std::vector<Packed>& b = buckets_[static_cast<size_t>(cur_ & kMask)];
      if (head_ < b.size()) {
        const Packed p = b[head_++];
        --size_;
        return Item{cur_, p.data, p.aux};
      }
      b.clear();
      head_ = 0;
      occ_[0][(cur_ & kMask) >> 6] &= ~(1ull << (cur_ & 63));
      advance();
    }
  }

 private:
  static constexpr int kBits = 8;            ///< slots per level = 2^kBits
  static constexpr int kSlots = 1 << kBits;  ///< 256
  static constexpr int kLevels = 3;          ///< wheel span = 2^24 ticks
  static constexpr int kSpanBits = kLevels * kBits;
  static constexpr std::uint64_t kMask = kSlots - 1;
  static constexpr int kWords = kSlots / 64;

  /// In-wheel record: 16 bytes.  No sequence number — FIFO order within a
  /// bucket IS seq order, structurally.
  struct Packed {
    std::uint64_t tick;
    std::uint32_t data;
    std::uint32_t aux;
  };

  /// Heap / overflow record: the explicit `(tick, seq)` key the wheel
  /// does not need.
  struct HeapEntry {
    std::uint64_t tick;
    std::uint64_t seq;
    std::uint32_t data;
    std::uint32_t aux;
  };

  /// Buckets an in-window event on the lowest level whose aligned window
  /// still contains the cursor.  Precondition: same top-level window.
  void place(std::uint64_t tick, std::uint32_t data, std::uint32_t aux) {
    int level = 0;
    while (level + 1 < kLevels &&
           (tick >> ((level + 1) * kBits)) != (cur_ >> ((level + 1) * kBits))) {
      ++level;
    }
    const int slot = static_cast<int>((tick >> (level * kBits)) & kMask);
    buckets_[static_cast<size_t>(level * kSlots + slot)].push_back(
        Packed{tick, data, aux});
    occ_[level][slot >> 6] |= 1ull << (slot & 63);
  }

  void park(std::uint64_t tick, std::uint32_t data, std::uint32_t aux);
  void drain_overflow();
  void cascade(int level);
  void advance();

  void push_heap_mode(std::uint64_t tick, std::uint32_t data,
                      std::uint32_t aux);
  Item pop_heap_mode();

  // Level-0 slots first so the pop hot path indexes with no offset.
  std::array<std::vector<Packed>, kLevels * kSlots> buckets_;
  std::uint64_t occ_[kLevels][kWords] = {};
  /// Overflow park (wheel mode) / the entire queue (heap mode): one
  /// recycled buffer, `(tick, seq)` min-heap order in both roles.
  std::vector<HeapEntry> heap_;
  std::uint64_t cur_ = 0;
  std::size_t head_ = 0;  ///< consumed prefix of the cursor's bucket
  std::uint64_t size_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t cascaded_ = 0;
  std::uint64_t parked_ = 0;
  QueueKind kind_ = QueueKind::kTimingWheel;
};

}  // namespace dirant::sim
