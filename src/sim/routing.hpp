#pragma once
/// \file routing.hpp
/// Greedy geographic routing over the oriented network — the workload
/// directional sensor networks actually run.  A packet at u destined for t
/// is forwarded to the out-neighbour closest to t; it fails if no neighbour
/// makes progress (a routing void) or the TTL expires.

#include <span>

#include "geometry/point.hpp"
#include "graph/digraph.hpp"

namespace dirant::sim {

struct RouteResult {
  bool delivered = false;
  int hops = 0;
};

/// Route one packet greedily from `src` to `dst`.
RouteResult greedy_route(const graph::Digraph& g,
                         std::span<const geom::Point> pts, int src, int dst,
                         int ttl = -1);

struct RoutingStats {
  double delivery_rate = 0.0;
  double mean_hops = 0.0;        ///< over delivered packets
  double mean_stretch = 0.0;     ///< greedy hops / BFS hops, delivered only
  int attempted = 0;
};

/// Sample `samples` random (src, dst) pairs.  Runs over the thread-local
/// AuditSession (sim/audit.hpp), which owns the per-sample BFS buffers.
RoutingStats routing_stats(const graph::Digraph& g,
                           std::span<const geom::Point> pts, int samples,
                           std::uint64_t seed);

}  // namespace dirant::sim
