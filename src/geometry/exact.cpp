#include "geometry/exact.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dirant::geom {
namespace {

// --- expansion arithmetic (Shewchuk) ------------------------------------
// An expansion is a sum of doubles with non-overlapping mantissas stored in
// increasing magnitude order; its sign is the sign of its largest component.

// |a| >= |b| is NOT required: two_sum is the branch-free exact sum.
inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bv = x - a;
  const double av = x - bv;
  y = (a - av) + (b - bv);
}

// Exact product via fused multiply-add: a*b = x + y.
inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  y = std::fma(a, b, -x);
}

// e (expansion) + b (double) -> h (expansion).  Grows by one component.
void grow_expansion(std::vector<double>& e, double b) {
  double q = b;
  for (double& ei : e) {
    double sum, err;
    two_sum(q, ei, sum, err);
    ei = err;
    q = sum;
  }
  e.push_back(q);
}

int expansion_sign(const std::vector<double>& e) {
  for (auto it = e.rbegin(); it != e.rend(); ++it) {
    if (*it > 0.0) return +1;
    if (*it < 0.0) return -1;
  }
  return 0;
}

// Error-bound constant for the orient2d filter (Shewchuk).
const double kCcwErrBound = (3.0 + 16.0 * 2.220446049250313e-16) *
                            2.220446049250313e-16;

int orient2d_exact(const Point& a, const Point& b, const Point& c) {
  // det = ax*by - ax*cy - ay*bx + ay*cx + bx*cy - by*cx, computed exactly.
  const double terms[6][2] = {{a.x, b.y}, {-a.x, c.y}, {-a.y, b.x},
                              {a.y, c.x}, {b.x, c.y},  {-b.y, c.x}};
  std::vector<double> e;
  e.reserve(12);
  for (const auto& t : terms) {
    double hi, lo;
    two_product(t[0], t[1], hi, lo);
    grow_expansion(e, lo);
    grow_expansion(e, hi);
  }
  return expansion_sign(e);
}

}  // namespace

double orient2d_value(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

int orient2d_sign(const Point& a, const Point& b, const Point& c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? +1 : (det < 0.0 ? -1 : 0);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det > 0.0 ? +1 : (det < 0.0 ? -1 : 0);
    detsum = -detleft - detright;
  } else {
    return det > 0.0 ? +1 : (det < 0.0 ? -1 : 0);
  }
  if (std::abs(det) >= kCcwErrBound * detsum) {
    return det > 0.0 ? +1 : -1;
  }
  return orient2d_exact(a, b, c);
}

int incircle_sign(const Point& pa, const Point& pb, const Point& pc,
                  const Point& pd) {
  const double adx = pa.x - pd.x, ady = pa.y - pd.y;
  const double bdx = pb.x - pd.x, bdy = pb.y - pd.y;
  const double cdx = pc.x - pd.x, cdy = pc.y - pd.y;

  const double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;
  const double cdxady = cdx * ady, adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;
  const double adxbdy = adx * bdy, bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent = (std::abs(bdxcdy) + std::abs(cdxbdy)) * alift +
                           (std::abs(cdxady) + std::abs(adxcdy)) * blift +
                           (std::abs(adxbdy) + std::abs(bdxady)) * clift;
  const double errbound =
      (10.0 + 96.0 * 2.220446049250313e-16) * 2.220446049250313e-16 *
      permanent;
  if (std::abs(det) > errbound) return det > 0.0 ? +1 : -1;

  // float128 stage on raw coordinates: subtraction of doubles and the
  // subsequent degree-4 products are exact at 113-bit precision for the
  // coordinate ranges this library generates.
  using f128 = __float128;
  const f128 Adx = (f128)pa.x - (f128)pd.x, Ady = (f128)pa.y - (f128)pd.y;
  const f128 Bdx = (f128)pb.x - (f128)pd.x, Bdy = (f128)pb.y - (f128)pd.y;
  const f128 Cdx = (f128)pc.x - (f128)pd.x, Cdy = (f128)pc.y - (f128)pd.y;
  const f128 Alift = Adx * Adx + Ady * Ady;
  const f128 Blift = Bdx * Bdx + Bdy * Bdy;
  const f128 Clift = Cdx * Cdx + Cdy * Cdy;
  const f128 Det = Alift * (Bdx * Cdy - Cdx * Bdy) +
                   Blift * (Cdx * Ady - Adx * Cdy) +
                   Clift * (Adx * Bdy - Bdx * Ady);
  const f128 AbsDet = Det >= 0 ? Det : -Det;
  const f128 Perm =
      (Bdx * Cdy >= 0 ? Bdx * Cdy : -(Bdx * Cdy)) * Alift +
      (Cdx * Bdy >= 0 ? Cdx * Bdy : -(Cdx * Bdy)) * Alift +
      (Cdx * Ady >= 0 ? Cdx * Ady : -(Cdx * Ady)) * Blift +
      (Adx * Cdy >= 0 ? Adx * Cdy : -(Adx * Cdy)) * Blift +
      (Adx * Bdy >= 0 ? Adx * Bdy : -(Adx * Bdy)) * Clift +
      (Bdx * Ady >= 0 ? Bdx * Ady : -(Bdx * Ady)) * Clift;
  // float128 epsilon = 2^-113.
  const f128 Err = Perm * (f128)1.9259299443872359e-34 * 16;
  if (AbsDet > Err) return Det > 0 ? +1 : -1;
  return 0;  // cocircular at 113-bit precision: treat as degenerate.
}

bool point_in_triangle(const Point& p, const Point& a, const Point& b,
                       const Point& c) {
  int o = orient2d_sign(a, b, c);
  if (o == 0) {
    // Degenerate triangle: containment means "on the segment spanned".
    // Check p collinear and within the bounding box.
    if (orient2d_sign(a, b, p) != 0 && orient2d_sign(a, c, p) != 0) {
      return false;
    }
    const double minx = std::min({a.x, b.x, c.x}), maxx = std::max({a.x, b.x, c.x});
    const double miny = std::min({a.y, b.y, c.y}), maxy = std::max({a.y, b.y, c.y});
    return orient2d_sign(a, b, p) == 0 && p.x >= minx && p.x <= maxx &&
           p.y >= miny && p.y <= maxy;
  }
  const Point& u = (o > 0) ? a : a;
  const Point& v = (o > 0) ? b : c;
  const Point& w = (o > 0) ? c : b;
  return orient2d_sign(u, v, p) >= 0 && orient2d_sign(v, w, p) >= 0 &&
         orient2d_sign(w, u, p) >= 0;
}

bool triangle_empty(const Point& a, const Point& b, const Point& c,
                    const Point* pts, int n, int ia, int ib, int ic) {
  for (int i = 0; i < n; ++i) {
    if (i == ia || i == ib || i == ic) continue;
    if (point_in_triangle(pts[i], a, b, c)) return false;
  }
  return true;
}

}  // namespace dirant::geom
