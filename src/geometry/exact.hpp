#pragma once
/// \file exact.hpp
/// Sign-exact geometric predicates.
///
/// Combinatorial structures (MST ties, Delaunay, hulls) must not flip on
/// rounding noise.  `orient2d_sign` is fully exact: a floating-point filter
/// (Shewchuk's error bound) falls back to exact expansion arithmetic built on
/// `std::fma`.  `incircle_sign` uses a double filter, then a `__float128`
/// evaluation with its own error bound; inputs that remain undecidable at
/// 113-bit precision are reported as degenerate (0), which callers treat as
/// "cocircular".  For the coordinate magnitudes produced by this library's
/// generators (|x| < 2^26 after scaling) the float128 stage is itself exact.

#include "geometry/point.hpp"

namespace dirant::geom {

/// Sign of the signed area of triangle (a, b, c):
/// +1 if counterclockwise, -1 if clockwise, 0 if collinear.  Exact.
int orient2d_sign(const Point& a, const Point& b, const Point& c);

/// Twice the signed area of triangle (a, b, c) in double precision (not
/// exact; use for magnitudes, not decisions).
double orient2d_value(const Point& a, const Point& b, const Point& c);

/// Sign of the incircle determinant: +1 if `d` lies strictly inside the
/// circumcircle of the counterclockwise triangle (a, b, c), -1 if strictly
/// outside, 0 if (numerically) cocircular.
int incircle_sign(const Point& a, const Point& b, const Point& c,
                  const Point& d);

/// True if `p` lies inside or on the boundary of triangle (a, b, c)
/// (any vertex order).  Exact.
bool point_in_triangle(const Point& p, const Point& a, const Point& b,
                       const Point& c);

/// True if the closed triangle (a, b, c) contains no point of `pts` other
/// than the triangle's own corners (by index).  O(n) scan; used to validate
/// the paper's Fact 1(3) ("the triangle uvw is empty").
bool triangle_empty(const Point& a, const Point& b, const Point& c,
                    const Point* pts, int n, int ia, int ib, int ic);

}  // namespace dirant::geom
