#include "geometry/closest_pair.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace dirant::geom {
namespace {

struct Entry {
  Point p;
  int idx;
};

void recurse(std::vector<Entry>& xs, std::vector<Entry>& buf, int lo, int hi,
             ClosestPair& best) {
  const int n = hi - lo;
  if (n <= 3) {
    for (int i = lo; i < hi; ++i) {
      for (int j = i + 1; j < hi; ++j) {
        const double d = dist(xs[i].p, xs[j].p);
        if (d < best.distance) best = {xs[i].idx, xs[j].idx, d};
      }
    }
    std::sort(xs.begin() + lo, xs.begin() + hi,
              [](const Entry& a, const Entry& b) { return a.p.y < b.p.y; });
    return;
  }
  const int mid = lo + n / 2;
  const double midx = xs[mid].p.x;
  recurse(xs, buf, lo, mid, best);
  recurse(xs, buf, mid, hi, best);
  // Merge by y.
  std::merge(xs.begin() + lo, xs.begin() + mid, xs.begin() + mid,
             xs.begin() + hi, buf.begin() + lo,
             [](const Entry& a, const Entry& b) { return a.p.y < b.p.y; });
  std::copy(buf.begin() + lo, buf.begin() + hi, xs.begin() + lo);
  // Strip scan.
  static thread_local std::vector<int> strip;
  strip.clear();
  for (int i = lo; i < hi; ++i) {
    if (std::abs(xs[i].p.x - midx) < best.distance) strip.push_back(i);
  }
  for (size_t i = 0; i < strip.size(); ++i) {
    for (size_t j = i + 1; j < strip.size(); ++j) {
      if (xs[strip[j]].p.y - xs[strip[i]].p.y >= best.distance) break;
      const double d = dist(xs[strip[i]].p, xs[strip[j]].p);
      if (d < best.distance) best = {xs[strip[i]].idx, xs[strip[j]].idx, d};
    }
  }
}

}  // namespace

ClosestPair closest_pair(std::span<const Point> pts) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT_MSG(n >= 2, "closest_pair needs at least two points");
  std::vector<Entry> xs(n);
  for (int i = 0; i < n; ++i) xs[i] = {pts[i], i};
  std::sort(xs.begin(), xs.end(), [](const Entry& a, const Entry& b) {
    return a.p.x < b.p.x || (a.p.x == b.p.x && a.p.y < b.p.y);
  });
  std::vector<Entry> buf(n);
  ClosestPair best{-1, -1, std::numeric_limits<double>::infinity()};
  recurse(xs, buf, 0, n, best);
  return best;
}

}  // namespace dirant::geom
