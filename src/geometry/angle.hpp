#pragma once
/// \file angle.hpp
/// Cyclic angle arithmetic.  The paper's constructions are phrased entirely
/// in terms of counterclockwise (ccw) angular intervals between rays out of a
/// vertex; these helpers keep that arithmetic in one audited place.
///
/// Conventions: angles are radians in [0, 2*pi); `ccw_delta(a, b)` is the ccw
/// sweep from direction `a` to direction `b` and lies in [0, 2*pi).

#include <span>
#include <vector>

#include "common/constants.hpp"
#include "geometry/point.hpp"

namespace dirant::geom {

/// Normalize an angle into [0, 2*pi).
double norm_angle(double a);

/// Counterclockwise sweep from direction `from` to direction `to`, in
/// [0, 2*pi).  ccw_delta(a, a) == 0.
double ccw_delta(double from, double to);

/// Normalized polar angle of `v` in [0, 2*pi).  `v` must be nonzero.
double angle_of(const Vec2& v);

/// Polar angle of the ray from `from` towards `to`, in [0, 2*pi).
double angle_to(const Point& from, const Point& to);

/// Smallest angular separation between two directions, in [0, pi].
double angular_separation(double a, double b);

/// True if direction `theta` lies in the closed ccw interval
/// [start, start+width], with angular tolerance `tol` at both ends.
bool in_ccw_interval(double theta, double start, double width,
                     double tol = kAngleTol);

/// A maximal angular gap between consecutive rays (sorted ccw).
struct AngularGap {
  int after;     ///< index (into the sorted order) of the ray the gap follows
  double start;  ///< direction of that ray
  double width;  ///< ccw width of the gap
};

/// Indices of `thetas` sorted by angle (ascending in [0, 2*pi); stable).
std::vector<int> sort_by_angle(std::span<const double> thetas);

/// Gaps between ccw-consecutive rays.  `sorted` must be ascending angles in
/// [0, 2*pi); returns one gap per ray (wrapping at the end).  For a single
/// ray the gap is the full circle.
std::vector<AngularGap> gaps_of_sorted(std::span<const double> sorted);

/// Recycling variant: clears and fills `out` (allocation-free once warm).
void gaps_of_sorted(std::span<const double> sorted,
                    std::vector<AngularGap>& out);

/// Minimum total spread needed to cover all ray directions with at most `k`
/// sectors: 2*pi minus the k largest gaps (optimal; the constructive half of
/// the paper's Lemma 1).  Returns the covered ccw intervals as (start, width)
/// pairs, at most `k` of them, each starting and ending on an input ray.
/// With k >= number of rays, returns one zero-width interval per ray.
struct SpreadCover {
  double total_spread = 0.0;
  std::vector<std::pair<double, double>> arcs;  ///< (start, ccw width)
};
SpreadCover min_spread_cover(std::span<const double> thetas, int k);

/// Working memory for `min_spread_cover` loops (one cover per tree node in
/// the Theorem 2 pipeline).  Buffers keep their capacity across calls, so a
/// warm scratch makes repeated covers allocation-free.
struct SpreadCoverScratch {
  std::vector<double> sorted;
  std::vector<AngularGap> gaps;
  std::vector<int> order;
  std::vector<char> dropped;
};

/// Scratch-reusing variant: recycles `out.arcs` and every scratch buffer.
void min_spread_cover(std::span<const double> thetas, int k, SpreadCover& out,
                      SpreadCoverScratch& scratch);

}  // namespace dirant::geom
