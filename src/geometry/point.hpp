#pragma once
/// \file point.hpp
/// 2-D points/vectors and the handful of vector operations the rest of the
/// library builds on.  Everything is `double`; combinatorial decisions that
/// must be exact go through geometry/exact.hpp instead of raw arithmetic.

#include <cmath>
#include <iosfwd>

namespace dirant::geom {

/// A 2-D vector.  Also used as a point (affine distinction is not worth the
/// ceremony at this scale); `Point` is provided as a readability alias.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr Vec2& operator/=(double s) {
    x /= s;
    y /= s;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, const Vec2& b) { return a += b; }
  friend constexpr Vec2 operator-(Vec2 a, const Vec2& b) { return a -= b; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return a *= s; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return a *= s; }
  friend constexpr Vec2 operator/(Vec2 a, double s) { return a /= s; }
  friend constexpr Vec2 operator-(const Vec2& a) { return {-a.x, -a.y}; }

  friend constexpr bool operator==(const Vec2& a, const Vec2& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Vec2& a, const Vec2& b) {
    return !(a == b);
  }
};

using Point = Vec2;

/// Dot product.
constexpr double dot(const Vec2& a, const Vec2& b) {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z-component of the 3-D cross product).  Positive when
/// `b` lies counterclockwise of `a`.
constexpr double cross(const Vec2& a, const Vec2& b) {
  return a.x * b.y - a.y * b.x;
}

/// Squared Euclidean norm.
constexpr double norm2(const Vec2& v) { return dot(v, v); }

/// Euclidean norm.
inline double norm(const Vec2& v) { return std::hypot(v.x, v.y); }

/// Squared distance between two points.
constexpr double dist2(const Point& a, const Point& b) {
  return norm2(b - a);
}

/// Euclidean distance between two points.
inline double dist(const Point& a, const Point& b) { return norm(b - a); }

/// Polar angle of `v` in [-pi, pi] as returned by atan2.  Use
/// geom::norm_angle (angle.hpp) to map into [0, 2*pi).
inline double raw_angle_of(const Vec2& v) { return std::atan2(v.y, v.x); }

/// Unit vector at polar angle `theta`.
inline Vec2 unit(double theta) { return {std::cos(theta), std::sin(theta)}; }

/// Vector of length `r` at polar angle `theta`.
inline Vec2 from_polar(double r, double theta) { return r * unit(theta); }

/// `v` rotated by +90 degrees (counterclockwise).
constexpr Vec2 perp(const Vec2& v) { return {-v.y, v.x}; }

/// Linear interpolation `a + t*(b-a)`.
constexpr Point lerp(const Point& a, const Point& b, double t) {
  return a + t * (b - a);
}

/// Midpoint of the segment `ab`.
constexpr Point midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace dirant::geom
