#include "geometry/point.hpp"

#include <ostream>

namespace dirant::geom {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace dirant::geom
