#include "geometry/hull.hpp"

#include <algorithm>

#include "geometry/exact.hpp"

namespace dirant::geom {

std::vector<int> convex_hull(std::span<const Point> pts) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    return pts[a].x < pts[b].x || (pts[a].x == pts[b].x && pts[a].y < pts[b].y);
  });
  idx.erase(std::unique(idx.begin(), idx.end(),
                        [&](int a, int b) { return pts[a] == pts[b]; }),
            idx.end());
  const int m = static_cast<int>(idx.size());
  if (m <= 2) return idx;

  std::vector<int> hull(2 * m);
  int k = 0;
  for (int i = 0; i < m; ++i) {  // lower chain
    while (k >= 2 && orient2d_sign(pts[hull[k - 2]], pts[hull[k - 1]],
                                   pts[idx[i]]) <= 0) {
      --k;
    }
    hull[k++] = idx[i];
  }
  const int lower = k + 1;
  for (int i = m - 2; i >= 0; --i) {  // upper chain
    while (k >= lower && orient2d_sign(pts[hull[k - 2]], pts[hull[k - 1]],
                                       pts[idx[i]]) <= 0) {
      --k;
    }
    hull[k++] = idx[i];
  }
  hull.resize(k - 1);
  return hull;
}

double diameter(std::span<const Point> pts) {
  if (pts.size() < 2) return 0.0;
  const auto hull = convex_hull(pts);
  const int h = static_cast<int>(hull.size());
  if (h == 1) return 0.0;
  if (h == 2) return dist(pts[hull[0]], pts[hull[1]]);
  // Rotating calipers.
  double best = 0.0;
  int j = 1;
  for (int i = 0; i < h; ++i) {
    const Point& a = pts[hull[i]];
    const Point& b = pts[hull[(i + 1) % h]];
    while (true) {
      const int jn = (j + 1) % h;
      const double cur = std::abs(cross(b - a, pts[hull[j]] - a));
      const double nxt = std::abs(cross(b - a, pts[hull[jn]] - a));
      if (nxt > cur) {
        j = jn;
      } else {
        break;
      }
    }
    best = std::max({best, dist(a, pts[hull[j]]), dist(b, pts[hull[j]])});
  }
  return best;
}

}  // namespace dirant::geom
