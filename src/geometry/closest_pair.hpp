#pragma once
/// \file closest_pair.hpp
/// Classic O(n log n) divide-and-conquer closest pair.  Used by generators to
/// enforce minimum separation and by tests as an oracle for spatial indexes.

#include <span>
#include <utility>

#include "geometry/point.hpp"

namespace dirant::geom {

/// Result of a closest-pair query.
struct ClosestPair {
  int a = -1;
  int b = -1;
  double distance = 0.0;
};

/// Closest pair of distinct indices (n >= 2 required).
ClosestPair closest_pair(std::span<const Point> pts);

}  // namespace dirant::geom
