#pragma once
/// \file sector.hpp
/// The antenna beam model of the paper: a circular sector with an apex
/// (sensor position), a start direction, a ccw angular width ("spread") and a
/// radius ("range").  A zero-width sector is a ray ("beam") — the paper's
/// "antenna of angle 0".

#include "geometry/angle.hpp"
#include "geometry/point.hpp"

namespace dirant::geom {

/// A circular sector.  Covers every point p with dist(apex, p) <= radius and
/// polar angle (as seen from apex) inside the ccw interval
/// [start, start + width].  The apex itself is not considered covered.
struct Sector {
  Point apex;
  double start = 0.0;   ///< direction of the ccw boundary ray, [0, 2*pi)
  double width = 0.0;   ///< spread in radians, [0, 2*pi]
  double radius = 0.0;  ///< range, same units as the point coordinates

  /// Containment test with angular tolerance `angle_tol` (radians) and
  /// multiplicative+additive radius tolerance.
  bool contains(const Point& p, double angle_tol = kAngleTol,
                double radius_tol = kRadiusAbsTol) const;

  /// Direction of the cw boundary ray (start + width, normalized).
  double end() const { return norm_angle(start + width); }

  /// Direction of the bisector.
  double center() const { return norm_angle(start + width / 2.0); }
};

/// Zero-spread beam from `apex` aimed exactly at `target`; radius defaults to
/// the distance (pass `radius` to extend).
Sector beam_to(const Point& apex, const Point& target, double radius = -1.0);

/// Sector at `apex` spanning the ccw interval from direction `start_theta`
/// over `width` radians, with the given radius.
Sector make_arc(const Point& apex, double start_theta, double width,
                double radius);

}  // namespace dirant::geom
