#pragma once
/// \file hull.hpp
/// Convex hull (Andrew's monotone chain) and diameter via rotating calipers.
/// Used by the benchmark harness for instance statistics and by tests as an
/// independent oracle for extreme-point reasoning.

#include <span>
#include <vector>

#include "geometry/point.hpp"

namespace dirant::geom {

/// Indices of the convex hull of `pts` in counterclockwise order, starting
/// from the lexicographically smallest point.  Collinear boundary points are
/// excluded.  Handles n in {0, 1, 2} and fully collinear inputs gracefully
/// (returns the extreme points).
std::vector<int> convex_hull(std::span<const Point> pts);

/// Largest pairwise distance in `pts` (0 for n < 2).  O(n log n).
double diameter(std::span<const Point> pts);

}  // namespace dirant::geom
