#include "geometry/sector.hpp"

#include "common/assert.hpp"

namespace dirant::geom {

bool Sector::contains(const Point& p, double angle_tol,
                      double radius_tol) const {
  const Vec2 d = p - apex;
  const double r2 = norm2(d);
  if (r2 == 0.0) return false;  // the apex itself
  const double limit = radius * (1.0 + kRadiusRelTol) + radius_tol;
  if (r2 > limit * limit) return false;
  return in_ccw_interval(angle_of(d), start, width, angle_tol);
}

Sector beam_to(const Point& apex, const Point& target, double radius) {
  DIRANT_ASSERT_MSG(!(apex == target), "beam at coincident point");
  Sector s;
  s.apex = apex;
  s.start = angle_to(apex, target);
  s.width = 0.0;
  s.radius = radius >= 0.0 ? radius : dist(apex, target);
  return s;
}

Sector make_arc(const Point& apex, double start_theta, double width,
                double radius) {
  DIRANT_ASSERT(width >= 0.0 && width <= kTwoPi);
  DIRANT_ASSERT(radius >= 0.0);
  Sector s;
  s.apex = apex;
  s.start = norm_angle(start_theta);
  s.width = width;
  s.radius = radius;
  return s;
}

}  // namespace dirant::geom
