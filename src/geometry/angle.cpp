#include "geometry/angle.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dirant::geom {

double norm_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  if (a >= kTwoPi) a = 0.0;  // fmod rounding can land exactly on 2*pi
  return a;
}

double ccw_delta(double from, double to) { return norm_angle(to - from); }

double angle_of(const Vec2& v) {
  DIRANT_ASSERT_MSG(v.x != 0.0 || v.y != 0.0, "angle of zero vector");
  return norm_angle(std::atan2(v.y, v.x));
}

double angle_to(const Point& from, const Point& to) {
  return angle_of(to - from);
}

double angular_separation(double a, double b) {
  const double d = ccw_delta(a, b);
  return std::min(d, kTwoPi - d);
}

bool in_ccw_interval(double theta, double start, double width, double tol) {
  if (width >= kTwoPi - tol) return true;
  const double d = ccw_delta(start, theta);
  if (d <= width + tol) return true;
  // theta may sit just cw of start (d close to 2*pi).
  return kTwoPi - d <= tol;
}

std::vector<int> sort_by_angle(std::span<const double> thetas) {
  std::vector<int> idx(thetas.size());
  for (int i = 0; i < static_cast<int>(idx.size()); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return thetas[a] < thetas[b];
  });
  return idx;
}

void gaps_of_sorted(std::span<const double> sorted,
                    std::vector<AngularGap>& out) {
  const int n = static_cast<int>(sorted.size());
  DIRANT_ASSERT(n >= 1);
  out.clear();
  if (out.capacity() < static_cast<size_t>(n)) out.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double a = sorted[i];
    const double b = sorted[(i + 1) % n];
    double w = (n == 1) ? kTwoPi : ccw_delta(a, b);
    if (n > 1 && i == n - 1) {
      // Wrap gap: ensure the widths sum to exactly one turn despite rounding.
      double acc = 0.0;
      for (int j = 0; j + 1 < n; ++j) acc += out[j].width;
      w = std::max(0.0, kTwoPi - acc);
    }
    out.push_back({i, a, w});
  }
}

std::vector<AngularGap> gaps_of_sorted(std::span<const double> sorted) {
  std::vector<AngularGap> gaps;
  gaps_of_sorted(sorted, gaps);
  return gaps;
}

void min_spread_cover(std::span<const double> thetas, int k, SpreadCover& out,
                      SpreadCoverScratch& scratch) {
  out.total_spread = 0.0;
  out.arcs.clear();
  const int n = static_cast<int>(thetas.size());
  DIRANT_ASSERT(k >= 1);
  if (n == 0) return;

  auto& sorted = scratch.sorted;
  sorted.assign(thetas.begin(), thetas.end());
  for (double& t : sorted) t = norm_angle(t);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const int m = static_cast<int>(sorted.size());

  if (k >= m) {
    for (double t : sorted) out.arcs.emplace_back(t, 0.0);
    return;
  }

  auto& gaps = scratch.gaps;
  gaps_of_sorted(sorted, gaps);

  // Drop the k widest gaps; each remaining maximal run of rays is one arc.
  auto& order = scratch.order;
  order.resize(gaps.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return gaps[a].width > gaps[b].width;
  });
  auto& dropped = scratch.dropped;
  dropped.assign(gaps.size(), 0);
  for (int i = 0; i < k; ++i) dropped[order[i]] = 1;

  // Walk ccw; an arc starts after each dropped gap and ends at the ray that
  // precedes the next dropped gap.
  for (int g = 0; g < m; ++g) {
    if (!dropped[g]) continue;
    const int first = (g + 1) % m;  // ray starting this arc
    double width = 0.0;
    int i = first;
    while (!dropped[i]) {
      width += gaps[i].width;
      i = (i + 1) % m;
    }
    out.arcs.emplace_back(sorted[first], width);
    out.total_spread += width;
  }
}

SpreadCover min_spread_cover(std::span<const double> thetas, int k) {
  SpreadCover out;
  SpreadCoverScratch scratch;
  min_spread_cover(thetas, k, out, scratch);
  return out;
}

}  // namespace dirant::geom
