#pragma once
/// \file generators.hpp
/// Point-set generators for experiments and tests.  These play the role of
/// the sensor deployments the paper reasons about: random uniform fields,
/// clustered deployments, engineered lattices (degenerate MST ties), corridor
/// (collinear) deployments, and the regular d-gon "star" instances used in
/// Lemma 1's necessity argument.

#include <array>
#include <random>
#include <string>
#include <vector>

#include "geometry/point.hpp"

namespace dirant::geom {

using Rng = std::mt19937_64;

/// n points uniform in the axis-aligned square [0, side]^2.
std::vector<Point> uniform_square(int n, double side, Rng& rng);

/// n points uniform in the disk of the given radius centred at the origin.
std::vector<Point> uniform_disk(int n, double radius, Rng& rng);

/// n points in `clusters` Gaussian blobs (stddev `sigma`) whose centres are
/// uniform in [0, side]^2.
std::vector<Point> gaussian_clusters(int n, int clusters, double side,
                                     double sigma, Rng& rng);

/// rows x cols square lattice with the given spacing; each point jittered
/// uniformly in [-jitter, jitter]^2 (jitter = 0 gives the exact grid).
std::vector<Point> grid_points(int rows, int cols, double spacing,
                               double jitter, Rng& rng);

/// rows x cols triangular (hexagonal-packing) lattice.  Every interior vertex
/// has six equidistant neighbours at exactly 60 degrees: the canonical
/// degenerate input for MST degree-6 repair.
std::vector<Point> triangular_lattice(int rows, int cols, double spacing);

/// n points along the x-axis with the given spacing; each jittered
/// perpendicular by uniform [-jitter_perp, jitter_perp].
std::vector<Point> collinear_points(int n, double spacing, double jitter_perp,
                                    Rng& rng);

/// n points uniform in the annulus r_inner <= |p| <= r_outer.
std::vector<Point> annulus(int n, double r_inner, double r_outer, Rng& rng);

/// n points uniform in the boundary band of the square [0, side]^2: every
/// point lies within `band` of one of the four sides (the interior
/// (band, side-band)^2 is empty).  Models perimeter-surveillance
/// deployments; the MST hugs the boundary ring, so orientations must chain
/// around the hollow centre.  Requires 0 < band <= side / 2.
std::vector<Point> perimeter_band(int n, double side, double band, Rng& rng);

/// Vertices of a regular d-gon of the given circumradius.
std::vector<Point> regular_polygon(int d, double radius,
                                   Point center = {0.0, 0.0},
                                   double phase = 0.0);

/// Regular d-gon plus its centre (d+1 points): the Lemma 1 necessity
/// instance — the centre has MST degree d with all gaps exactly 2*pi/d.
std::vector<Point> star_with_center(int d, double radius, double phase = 0.0);

/// Copy of `pts` with every coordinate perturbed uniformly in [-eps, eps].
std::vector<Point> perturbed(std::vector<Point> pts, double eps, Rng& rng);

/// Remove points closer than `min_sep` to an earlier point (greedy).
std::vector<Point> dedupe_min_separation(std::vector<Point> pts,
                                         double min_sep);

/// Named instance families used by the parameterized test/bench sweeps.
enum class Distribution {
  kUniformSquare,
  kUniformDisk,
  kClusters,
  kGrid,
  kAnnulus,
  kCorridor,   ///< near-collinear chain
  kPerimeter,  ///< boundary band of a square (hollow interior)
};

inline constexpr std::array<Distribution, 7> kAllDistributions = {
    Distribution::kUniformSquare, Distribution::kUniformDisk,
    Distribution::kClusters,      Distribution::kGrid,
    Distribution::kAnnulus,       Distribution::kCorridor,
    Distribution::kPerimeter,
};

std::string to_string(Distribution d);

/// n points from the named family, scaled to roughly unit density so that
/// MST edge lengths are O(1) across families and sizes.
std::vector<Point> make_instance(Distribution d, int n, Rng& rng);

}  // namespace dirant::geom
