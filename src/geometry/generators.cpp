#include "geometry/generators.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/constants.hpp"

namespace dirant::geom {

std::vector<Point> uniform_square(int n, double side, Rng& rng) {
  DIRANT_ASSERT(n >= 0 && side > 0.0);
  std::uniform_real_distribution<double> u(0.0, side);
  std::vector<Point> pts(n);
  for (auto& p : pts) p = {u(rng), u(rng)};
  return pts;
}

std::vector<Point> uniform_disk(int n, double radius, Rng& rng) {
  DIRANT_ASSERT(n >= 0 && radius > 0.0);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    const double r = radius * std::sqrt(u(rng));
    const double t = kTwoPi * u(rng);
    p = from_polar(r, t);
  }
  return pts;
}

std::vector<Point> gaussian_clusters(int n, int clusters, double side,
                                     double sigma, Rng& rng) {
  DIRANT_ASSERT(n >= 0 && clusters >= 1);
  std::uniform_real_distribution<double> u(0.0, side);
  std::normal_distribution<double> g(0.0, sigma);
  std::vector<Point> centers(clusters);
  for (auto& c : centers) c = {u(rng), u(rng)};
  std::uniform_int_distribution<int> pick(0, clusters - 1);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    const Point& c = centers[pick(rng)];
    p = {c.x + g(rng), c.y + g(rng)};
  }
  return pts;
}

std::vector<Point> grid_points(int rows, int cols, double spacing,
                               double jitter, Rng& rng) {
  DIRANT_ASSERT(rows >= 1 && cols >= 1 && spacing > 0.0);
  std::uniform_real_distribution<double> j(-jitter, jitter);
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      Point p{c * spacing, r * spacing};
      if (jitter > 0.0) p += {j(rng), j(rng)};
      pts.push_back(p);
    }
  }
  return pts;
}

std::vector<Point> triangular_lattice(int rows, int cols, double spacing) {
  DIRANT_ASSERT(rows >= 1 && cols >= 1 && spacing > 0.0);
  const double h = spacing * std::sqrt(3.0) / 2.0;
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    const double x0 = (r % 2 == 0) ? 0.0 : spacing / 2.0;
    for (int c = 0; c < cols; ++c) {
      pts.push_back({x0 + c * spacing, r * h});
    }
  }
  return pts;
}

std::vector<Point> collinear_points(int n, double spacing, double jitter_perp,
                                    Rng& rng) {
  DIRANT_ASSERT(n >= 0 && spacing > 0.0);
  std::uniform_real_distribution<double> j(-jitter_perp, jitter_perp);
  std::vector<Point> pts(n);
  for (int i = 0; i < n; ++i) {
    pts[i] = {i * spacing, jitter_perp > 0.0 ? j(rng) : 0.0};
  }
  return pts;
}

std::vector<Point> annulus(int n, double r_inner, double r_outer, Rng& rng) {
  DIRANT_ASSERT(n >= 0 && 0.0 <= r_inner && r_inner < r_outer);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<Point> pts(n);
  const double a2 = r_inner * r_inner, b2 = r_outer * r_outer;
  for (auto& p : pts) {
    const double r = std::sqrt(a2 + (b2 - a2) * u(rng));
    p = from_polar(r, kTwoPi * u(rng));
  }
  return pts;
}

std::vector<Point> perimeter_band(int n, double side, double band, Rng& rng) {
  DIRANT_ASSERT(n >= 0 && side > 0.0 && band > 0.0 && band <= side / 2.0);
  // Rejection-free: pick one of the four side strips weighted by area, then
  // a uniform point inside it.  Strips partition the band: top/bottom span
  // the full width, left/right cover only the remaining middle rows.
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double horiz = side * band;                  // top or bottom strip
  const double vert = (side - 2.0 * band) * band;    // left or right strip
  const double total = 2.0 * (horiz + vert);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    const double pick = total * u(rng);
    if (pick < horiz) {  // bottom
      p = {side * u(rng), band * u(rng)};
    } else if (pick < 2.0 * horiz) {  // top
      p = {side * u(rng), side - band * u(rng)};
    } else if (pick < 2.0 * horiz + vert) {  // left
      p = {band * u(rng), band + (side - 2.0 * band) * u(rng)};
    } else {  // right
      p = {side - band * u(rng), band + (side - 2.0 * band) * u(rng)};
    }
  }
  return pts;
}

std::vector<Point> regular_polygon(int d, double radius, Point center,
                                   double phase) {
  DIRANT_ASSERT(d >= 1 && radius > 0.0);
  std::vector<Point> pts(d);
  for (int i = 0; i < d; ++i) {
    pts[i] = center + from_polar(radius, phase + kTwoPi * i / d);
  }
  return pts;
}

std::vector<Point> star_with_center(int d, double radius, double phase) {
  auto pts = regular_polygon(d, radius, {0.0, 0.0}, phase);
  pts.push_back({0.0, 0.0});
  return pts;
}

std::vector<Point> perturbed(std::vector<Point> pts, double eps, Rng& rng) {
  std::uniform_real_distribution<double> u(-eps, eps);
  for (auto& p : pts) p += {u(rng), u(rng)};
  return pts;
}

std::vector<Point> dedupe_min_separation(std::vector<Point> pts,
                                         double min_sep) {
  std::vector<Point> out;
  out.reserve(pts.size());
  const double sep2 = min_sep * min_sep;
  for (const auto& p : pts) {
    bool ok = true;
    for (const auto& q : out) {
      if (dist2(p, q) < sep2) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(p);
  }
  return out;
}

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kUniformSquare: return "uniform-square";
    case Distribution::kUniformDisk: return "uniform-disk";
    case Distribution::kClusters: return "clusters";
    case Distribution::kGrid: return "grid";
    case Distribution::kAnnulus: return "annulus";
    case Distribution::kCorridor: return "corridor";
    case Distribution::kPerimeter: return "perimeter";
  }
  return "unknown";
}

std::vector<Point> make_instance(Distribution d, int n, Rng& rng) {
  DIRANT_ASSERT(n >= 1);
  const double side = std::sqrt(static_cast<double>(n));
  switch (d) {
    case Distribution::kUniformSquare:
      return uniform_square(n, side, rng);
    case Distribution::kUniformDisk:
      return uniform_disk(n, side / std::sqrt(kPi) * 2.0, rng);
    case Distribution::kClusters: {
      const int k = std::max(1, n / 24);
      auto pts = gaussian_clusters(n, k, 2.0 * side, 1.0, rng);
      return dedupe_min_separation(std::move(pts), 1e-9);
    }
    case Distribution::kGrid: {
      const int rows = std::max(1, static_cast<int>(std::floor(std::sqrt(n))));
      const int cols = (n + rows - 1) / rows;
      auto pts = grid_points(rows, cols, 1.0, 0.05, rng);
      pts.resize(std::min<size_t>(pts.size(), n));
      return pts;
    }
    case Distribution::kAnnulus:
      return annulus(n, side / 2.0, side, rng);
    case Distribution::kCorridor:
      return collinear_points(n, 1.0, 0.2, rng);
    case Distribution::kPerimeter: {
      // Band one tenth of the side; side scaled so the band area is n
      // (density ~1, matching the other families): 0.36 * s^2 = n.
      const double s = std::sqrt(static_cast<double>(n) / 0.36);
      return perimeter_band(n, s, 0.1 * s, rng);
    }
  }
  return {};
}

}  // namespace dirant::geom
