#include "btsp/btsp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "graph/digraph.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/traversal.hpp"
#include "mst/engine.hpp"

namespace dirant::btsp {

using geom::Point;

namespace {

std::vector<double> sorted_unique_distances(std::span<const Point> pts) {
  const int n = static_cast<int>(pts.size());
  std::vector<double> ds;
  ds.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) ds.push_back(geom::dist(pts[i], pts[j]));
  }
  std::sort(ds.begin(), ds.end());
  ds.erase(std::unique(ds.begin(), ds.end()), ds.end());
  return ds;
}

graph::Graph threshold_graph(std::span<const Point> pts, double lambda) {
  const int n = static_cast<int>(pts.size());
  graph::GraphBuilder b(n);
  const double l2 = lambda * lambda * (1.0 + 1e-12);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (geom::dist2(pts[i], pts[j]) <= l2) b.add_edge(i, j);
    }
  }
  return b.build();
}

double cycle_bottleneck(std::span<const Point> pts,
                        const std::vector<int>& order) {
  double b = 0.0;
  const int n = static_cast<int>(order.size());
  for (int i = 0; i < n; ++i) {
    b = std::max(b, geom::dist(pts[order[i]], pts[order[(i + 1) % n]]));
  }
  return b;
}

// Greedy nearest-neighbour cycle followed by bottleneck-targeted 2-opt.
std::vector<int> greedy_two_opt(std::span<const Point> pts) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> order;
  order.reserve(n);
  std::vector<char> used(n, 0);
  int cur = 0;
  used[0] = 1;
  order.push_back(0);
  for (int step = 1; step < n; ++step) {
    int best = -1;
    double bd = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (used[v]) continue;
      const double d = geom::dist2(pts[cur], pts[v]);
      if (d < bd) {
        bd = d;
        best = v;
      }
    }
    used[best] = 1;
    order.push_back(best);
    cur = best;
  }
  // 2-opt on the bottleneck: reverse segments to shrink the longest hop.
  auto hop = [&](int i, int j) {
    return geom::dist(pts[order[i]], pts[order[j]]);
  };
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 64) {
    improved = false;
    ++rounds;
    // Locate the longest hop (i, i+1).
    int worst = 0;
    double wl = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d = hop(i, (i + 1) % n);
      if (d > wl) {
        wl = d;
        worst = i;
      }
    }
    // Try 2-opt moves (worst, j): replaces hops (worst, worst+1), (j, j+1)
    // with (worst, j), (worst+1, j+1) and reverses in between.
    for (int j = 0; j < n; ++j) {
      if (j == worst || (j + 1) % n == worst || j == (worst + 1) % n) continue;
      const double other = hop(j, (j + 1) % n);
      const double cur_max = std::max(wl, other);
      const double new_max =
          std::max(hop(worst, j), hop((worst + 1) % n, (j + 1) % n));
      if (new_max < cur_max - 1e-12) {
        // Reverse order[worst+1 .. j] (cyclic).
        int a = (worst + 1) % n, b = j;
        int len = (b - a + n) % n + 1;
        for (int s = 0; s < len / 2; ++s) {
          std::swap(order[(a + s) % n], order[(b - s + n) % n]);
        }
        improved = true;
        break;
      }
    }
  }
  return order;
}

}  // namespace

double bottleneck_lower_bound(std::span<const Point> pts) {
  const int n = static_cast<int>(pts.size());
  if (n < 3) return 0.0;
  // (1) Every vertex needs two incident cycle edges.
  double lb = 0.0;
  for (int i = 0; i < n; ++i) {
    double d1 = std::numeric_limits<double>::infinity(), d2 = d1;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = geom::dist(pts[i], pts[j]);
      if (d < d1) {
        d2 = d1;
        d1 = d;
      } else if (d < d2) {
        d2 = d;
      }
    }
    lb = std::max(lb, d2);
  }
  // (2) Connectivity: minimum bottleneck spanning tree = MST lmax.
  lb = std::max(lb, mst::EmstEngine::shared().lmax(pts));
  // (3) Biconnectivity threshold (binary search over unique distances).
  const auto ds = sorted_unique_distances(pts);
  int lo = 0, hi = static_cast<int>(ds.size()) - 1;
  // Invariant: threshold_graph(ds[hi]) is biconnected (complete graph is,
  // for n >= 3).
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (graph::is_biconnected(threshold_graph(pts, ds[mid]))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  lb = std::max(lb, ds[lo]);
  return lb;
}

CycleResult exact_bottleneck_cycle(std::span<const Point> pts) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT_MSG(n >= 3, "a cycle needs at least 3 points");
  DIRANT_ASSERT_MSG(n <= 18, "exact BTSP limited to n <= 18");
  const double lb = bottleneck_lower_bound(pts);
  auto ds = sorted_unique_distances(pts);
  ds.erase(std::remove_if(ds.begin(), ds.end(),
                          [&](double d) { return d < lb - 1e-12; }),
           ds.end());
  int lo = 0, hi = static_cast<int>(ds.size()) - 1;
  std::vector<int> best_cycle;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    const auto cyc =
        graph::hamiltonian_cycle_exact(threshold_graph(pts, ds[mid]));
    if (cyc) {
      best_cycle = *cyc;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  DIRANT_ASSERT_MSG(!best_cycle.empty(), "complete graph must be Hamiltonian");
  CycleResult res;
  res.order = best_cycle;
  res.bottleneck = cycle_bottleneck(pts, best_cycle);
  res.proven_optimal = true;
  return res;
}

CycleResult heuristic_bottleneck_cycle(std::span<const Point> pts,
                                       std::uint64_t search_budget) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT_MSG(n >= 3, "a cycle needs at least 3 points");
  const double lb = bottleneck_lower_bound(pts);

  CycleResult res;
  res.order = greedy_two_opt(pts);
  res.bottleneck = cycle_bottleneck(pts, res.order);

  // Threshold search below the incumbent; "not found" is not a proof, so we
  // simply keep the best cycle discovered.
  auto ds = sorted_unique_distances(pts);
  ds.erase(std::remove_if(ds.begin(), ds.end(),
                          [&](double d) {
                            return d < lb - 1e-12 ||
                                   d >= res.bottleneck - 1e-12;
                          }),
           ds.end());
  int lo = 0, hi = static_cast<int>(ds.size()) - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    const auto cyc = graph::hamiltonian_cycle_backtracking(
        threshold_graph(pts, ds[mid]), search_budget);
    if (cyc) {
      res.order = *cyc;
      res.bottleneck = cycle_bottleneck(pts, res.order);
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  res.proven_optimal = res.bottleneck <= lb + 1e-12;
  return res;
}

CycleResult bottleneck_cycle(std::span<const Point> pts, int exact_limit) {
  const int n = static_cast<int>(pts.size());
  if (n <= exact_limit) return exact_bottleneck_cycle(pts);
  return heuristic_bottleneck_cycle(pts);
}

}  // namespace dirant::btsp
