#pragma once
/// \file btsp.hpp
/// Bottleneck travelling salesman substrate — the paper's reference [14]
/// (Parker–Rardin).  Table 1's spread-0 rows orient every sensor along a
/// Hamiltonian cycle whose longest hop ("bottleneck") is small.  We provide:
///   * an exact solver (binary search over thresholds + Held–Karp
///     reachability) for small n — the per-instance optimum / lower bound,
///   * a heuristic (threshold search + budgeted backtracking, greedy+2-opt
///     fallback) for general n,
///   * instance lower bounds (2nd-nearest-neighbour, connectivity = MST
///     lmax, biconnectivity threshold).

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.hpp"

namespace dirant::btsp {

struct CycleResult {
  std::vector<int> order;    ///< cyclic vertex sequence (size n)
  double bottleneck = 0.0;   ///< longest hop
  bool proven_optimal = false;
};

/// max over the three classic lower bounds on the optimal bottleneck:
/// every vertex needs two cycle edges (2nd-nearest distance); the cycle is
/// connected (MST lmax); the cycle is biconnected (biconnectivity threshold).
double bottleneck_lower_bound(std::span<const geom::Point> pts);

/// Exact optimum; n <= 18 (exponential DP).
CycleResult exact_bottleneck_cycle(std::span<const geom::Point> pts);

/// Heuristic: never fails for n >= 3 (falls back to greedy + bottleneck
/// 2-opt); `search_budget` caps the backtracking nodes per threshold probe.
CycleResult heuristic_bottleneck_cycle(std::span<const geom::Point> pts,
                                       std::uint64_t search_budget = 200000);

/// Auto: exact for n <= `exact_limit`, heuristic otherwise.
CycleResult bottleneck_cycle(std::span<const geom::Point> pts,
                             int exact_limit = 13);

}  // namespace dirant::btsp
