#include "delaunay/delaunay.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "geometry/exact.hpp"

namespace dirant::delaunay {

using geom::Point;

namespace {

// Distance along the order-16 Hilbert curve of the 65536x65536 grid.
std::uint64_t hilbert_d(std::uint32_t x, std::uint32_t y) {
  std::uint64_t d = 0;
  for (std::uint32_t s = 1u << 15; s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) ? 1 : 0;
    const std::uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    if (ry == 0) {  // rotate quadrant
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

}  // namespace

bool Triangulator::run() {
  const int m = num_real();
  // Hilbert-curve insertion order: consecutive points are spatially
  // adjacent, so the walking point location starting from the previous
  // cavity is O(1) expected steps instead of O(sqrt(n)).
  // Pack (hilbert key << 32 | index) so the sort runs on flat uint64s.
  order_.resize(m);
  double min_x = pts_[0].x, max_x = pts_[0].x;
  double min_y = pts_[0].y, max_y = pts_[0].y;
  for (int i = 0; i < m; ++i) {
    min_x = std::min(min_x, pts_[i].x);
    max_x = std::max(max_x, pts_[i].x);
    min_y = std::min(min_y, pts_[i].y);
    max_y = std::max(max_y, pts_[i].y);
  }
  const double sx = max_x > min_x ? (max_x - min_x) : 1.0;
  const double sy = max_y > min_y ? (max_y - min_y) : 1.0;
  for (int i = 0; i < m; ++i) {
    const auto hx =
        static_cast<std::uint32_t>(65535.0 * (pts_[i].x - min_x) / sx);
    const auto hy =
        static_cast<std::uint32_t>(65535.0 * (pts_[i].y - min_y) / sy);
    order_[i] = (hilbert_d(hx, hy) << 32) | static_cast<std::uint32_t>(i);
  }
  std::sort(order_.begin(), order_.end());
  for (std::uint64_t packed : order_) {
    if (!insert(static_cast<int>(packed & 0xffffffffu))) return false;
  }
  return true;
}

void Triangulator::emit(Triangulation& out) const {
  const int m = num_real();
  for (int id = 0; id < static_cast<int>(tris_.size()); ++id) {
    const Tri& t = tris_[id];
    if (!t.alive) continue;
    if (t.v[0] < m && t.v[1] < m && t.v[2] < m) out.triangles.push_back(t.v);
    for (int i = 0; i < 3; ++i) {
      int a = t.v[(i + 1) % 3], b = t.v[(i + 2) % 3];
      if (a >= m || b >= m) continue;
      // A real-real edge is interior (super-triangle hosting), so its
      // neighbour exists and is alive; emitting from the lower triangle
      // id only dedupes without the former sort+unique pass.
      if (t.nb[i] != -1 && t.nb[i] < id) continue;
      if (a > b) std::swap(a, b);
      out.edges.emplace_back(a, b);
    }
  }
}

void Triangulator::make_super_triangle() {
  double min_x = 0, min_y = 0, max_x = 1, max_y = 1;
  if (!pts_.empty()) {
    min_x = max_x = pts_[0].x;
    min_y = max_y = pts_[0].y;
    for (const auto& p : pts_) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  }
  const double cx = (min_x + max_x) / 2.0, cy = (min_y + max_y) / 2.0;
  const double r = std::max({max_x - min_x, max_y - min_y, 1.0});
  const double M = 1e6 * r;
  const int s = static_cast<int>(pts_.size());
  pts_.push_back({cx + M, cy - M});
  pts_.push_back({cx, cy + M});
  pts_.push_back({cx - M, cy - M});
  Tri t;
  t.v = {s, s + 1, s + 2};
  if (geom::orient2d_sign(pts_[s], pts_[s + 1], pts_[s + 2]) < 0) {
    std::swap(t.v[1], t.v[2]);
  }
  t.nb = {-1, -1, -1};
  tris_.push_back(t);
  last_ = 0;
}

// True if q is strictly inside the circumcircle of alive triangle ti.
bool Triangulator::in_circumcircle(int ti, const Point& q) const {
  const Tri& t = tris_[ti];
  return geom::incircle_sign(pts_[t.v[0]], pts_[t.v[1]], pts_[t.v[2]], q) > 0;
}

// Walking point location; returns an alive triangle containing p
// (boundary inclusive), or -1 on failure.
int Triangulator::locate(const Point& p) const {
  int t = last_;
  if (t < 0 || !tris_[t].alive) {
    t = -1;
    for (int i = static_cast<int>(tris_.size()) - 1; i >= 0; --i) {
      if (tris_[i].alive) {
        t = i;
        break;
      }
    }
    if (t == -1) return -1;
  }
  const int cap = 4 * static_cast<int>(tris_.size()) + 64;
  for (int step = 0; step < cap; ++step) {
    const Tri& tri = tris_[t];
    bool moved = false;
    for (int i = 0; i < 3; ++i) {
      const int a = tri.v[(i + 1) % 3], b = tri.v[(i + 2) % 3];
      if (geom::orient2d_sign(pts_[a], pts_[b], p) < 0) {
        const int nxt = tri.nb[i];
        if (nxt == -1) return -1;  // outside the super-triangle
        t = nxt;
        moved = true;
        break;
      }
    }
    if (!moved) return t;
  }
  // Walk cycled (can happen on wildly degenerate data): linear fallback.
  for (int i = 0; i < static_cast<int>(tris_.size()); ++i) {
    if (!tris_[i].alive) continue;
    const Tri& tri = tris_[i];
    bool inside = true;
    for (int e = 0; e < 3 && inside; ++e) {
      inside = geom::orient2d_sign(pts_[tri.v[(e + 1) % 3]],
                                   pts_[tri.v[(e + 2) % 3]], p) >= 0;
    }
    if (inside) return i;
  }
  return -1;
}

bool Triangulator::insert(int pi) {
  const Point& p = pts_[pi];
  const int t0 = locate(p);
  if (t0 == -1) return false;

  // Grow the cavity: all triangles whose circumcircle strictly contains p.
  // Cavity membership is an epoch stamp, not a cleared bitmap — clearing
  // O(#triangles) per insertion is what made large builds quadratic.
  ++epoch_;
  cavity_mark_.resize(tris_.size(), 0);
  cavity_.clear();
  cavity_.push_back(t0);
  stack_.clear();
  stack_.push_back(t0);
  cavity_mark_[t0] = epoch_;
  while (!stack_.empty()) {
    const int t = stack_.back();
    stack_.pop_back();
    for (int i = 0; i < 3; ++i) {
      const int nb = tris_[t].nb[i];
      if (nb == -1 || cavity_mark_[nb] == epoch_) continue;
      if (in_circumcircle(nb, p)) {
        cavity_mark_[nb] = epoch_;
        cavity_.push_back(nb);
        stack_.push_back(nb);
      }
    }
  }
  const auto& cavity = cavity_;
  const auto in_cavity = [&](int t) { return cavity_mark_[t] == epoch_; };

  // Boundary: directed edges (a, b) of cavity triangles whose opposite
  // neighbour is outside the cavity.
  auto& boundary = boundary_;
  boundary.clear();
  for (int t : cavity) {
    for (int i = 0; i < 3; ++i) {
      const int nb = tris_[t].nb[i];
      if (nb != -1 && in_cavity(nb)) continue;
      boundary.push_back(
          {tris_[t].v[(i + 1) % 3], tris_[t].v[(i + 2) % 3], nb});
    }
  }
  // Each new triangle (p, a, b) must be ccw; a reflex boundary means the
  // predicate tie-handling produced a non-star cavity — report failure.
  for (const auto& e : boundary) {
    if (geom::orient2d_sign(p, pts_[e.a], pts_[e.b]) <= 0) return false;
  }

  for (int t : cavity) tris_[t].alive = false;
  auto& created = created_;
  created.clear();
  for (const auto& e : boundary) {
    Tri nt;
    nt.v = {pi, e.a, e.b};
    nt.nb = {e.outside, -1, -1};
    const int id = static_cast<int>(tris_.size());
    tris_.push_back(nt);
    cavity_mark_.push_back(0);
    created.push_back(id);
    // Repair the outside triangle's back-pointer.
    if (e.outside != -1) {
      Tri& o = tris_[e.outside];
      for (int i = 0; i < 3; ++i) {
        const int oa = o.v[(i + 1) % 3], ob = o.v[(i + 2) % 3];
        if (oa == e.b && ob == e.a) {
          o.nb[i] = id;
          break;
        }
      }
    }
  }
  // Fan linkage: edge (b, p) of (p, a, b) meets the triangle starting at
  // b; edge (p, a) meets the triangle ending at a.  The fan is small
  // (mean 6 edges), so a linear scan beats hash maps by a wide margin.
  const int fan = static_cast<int>(created.size());
  for (int id : created) {
    Tri& t = tris_[id];
    const int a = t.v[1], b = t.v[2];
    int start_at_b = -1, end_at_a = -1;
    for (int j = 0; j < fan; ++j) {
      if (tris_[created[j]].v[1] == b) start_at_b = created[j];
      if (tris_[created[j]].v[2] == a) end_at_a = created[j];
    }
    if (start_at_b == -1 || end_at_a == -1) return false;
    t.nb[1] = start_at_b;  // edge (v2, v0) = (b, p)
    t.nb[2] = end_at_a;    // edge (v0, v1) = (p, a)
  }
  if (!created.empty()) last_ = created.front();
  return true;
}

void Triangulator::triangulate(std::span<const Point> pts, Triangulation& out) {
  out.triangles.clear();
  out.edges.clear();
  const int n = static_cast<int>(pts.size());
  if (n <= 1) return;

  // Fast path: assume the input is duplicate-free (the overwhelmingly
  // common case) and skip the dedup prepass and its extra copy entirely.
  // An exact duplicate always aborts the build — its cavity boundary holds
  // an edge through the duplicate itself, which fails the reflex check —
  // so correctness never depends on this guess.
  pts_.assign(pts.begin(), pts.end());
  tris_.clear();
  cavity_mark_.clear();
  epoch_ = 0;
  last_ = -1;
  make_super_triangle();
  if (run()) {
    emit(out);
    return;
  }

  // Merge exact duplicates: sort indices by coordinates (duplicates become
  // adjacent runs), then assign unique slots in input order so the
  // remapping below is monotone and edge lists stay sorted for free.
  // Degenerate-input path: allocates freely (it runs at most once per
  // adversarial instance, never in PlanSession steady state).
  std::vector<int> by_coord(n);
  for (int i = 0; i < n; ++i) by_coord[i] = i;
  std::sort(by_coord.begin(), by_coord.end(), [&](int a, int b) {
    if (pts[a].x != pts[b].x) return pts[a].x < pts[b].x;
    if (pts[a].y != pts[b].y) return pts[a].y < pts[b].y;
    return a < b;
  });
  std::vector<int> rep(n, -1);  // original -> representative original
  for (int s = 0; s < n;) {
    int e = s + 1;
    while (e < n && pts[by_coord[e]] == pts[by_coord[s]]) ++e;
    // Lowest original index in the run represents it (ties above sort by
    // index, so by_coord[s] is that minimum).
    for (int j = s; j < e; ++j) rep[by_coord[j]] = by_coord[s];
    s = e;
  }
  std::vector<Point> unique_pts;
  std::vector<int> unique_to_orig;
  for (int i = 0; i < n; ++i) {
    if (rep[i] == i) {
      unique_pts.push_back(pts[i]);
      unique_to_orig.push_back(i);
    } else {
      out.edges.emplace_back(rep[i], i);  // rep[i] < i by construction
    }
  }

  if (unique_pts.size() >= 2) {
    pts_.assign(unique_pts.begin(), unique_pts.end());
    tris_.clear();
    cavity_mark_.clear();
    epoch_ = 0;
    last_ = -1;
    make_super_triangle();
    if (!run()) {
      out.edges.clear();  // signal failure: caller falls back
      out.triangles.clear();
      return;
    }
    const size_t edge0 = out.edges.size();
    emit(out);
    for (auto& t : out.triangles) {
      t = {unique_to_orig[t[0]], unique_to_orig[t[1]], unique_to_orig[t[2]]};
    }
    for (size_t i = edge0; i < out.edges.size(); ++i) {
      // unique_to_orig is strictly increasing, so u < v survives the remap.
      out.edges[i] = {unique_to_orig[out.edges[i].first],
                      unique_to_orig[out.edges[i].second]};
    }
  }
  // Already unique: duplicate-merge edges pair a representative with a
  // non-representative, triangulation edges pair two representatives, and
  // emit() writes each interior edge from one triangle only.
}

Triangulation triangulate(std::span<const Point> pts) {
  Triangulation out;
  Triangulator builder;
  builder.triangulate(pts, out);
  return out;
}

std::vector<std::pair<int, int>> delaunay_edges(std::span<const Point> pts) {
  return triangulate(pts).edges;
}

}  // namespace dirant::delaunay
