#include "delaunay/delaunay.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "common/assert.hpp"
#include "geometry/exact.hpp"

namespace dirant::delaunay {

using geom::Point;

namespace {

struct Tri {
  std::array<int, 3> v;   // ccw vertices
  std::array<int, 3> nb;  // nb[i]: triangle across the edge opposite v[i]
  bool alive = true;
};

class Builder {
 public:
  explicit Builder(std::vector<Point> pts) : pts_(std::move(pts)) {}

  // Returns false on a degeneracy the algorithm could not handle.
  bool run() {
    const int m = static_cast<int>(pts_.size());
    make_super_triangle();
    // Deterministic pseudo-shuffled insertion order.
    std::vector<int> order(m);
    for (int i = 0; i < m; ++i) order[i] = i;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (int i = m - 1; i > 0; --i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      std::swap(order[i], order[state % static_cast<std::uint64_t>(i + 1)]);
    }
    for (int idx : order) {
      if (!insert(idx)) return false;
    }
    return true;
  }

  std::vector<std::array<int, 3>> real_triangles() const {
    const int m = num_real();
    std::vector<std::array<int, 3>> out;
    for (const auto& t : tris_) {
      if (!t.alive) continue;
      if (t.v[0] < m && t.v[1] < m && t.v[2] < m) out.push_back(t.v);
    }
    return out;
  }

  std::vector<std::pair<int, int>> real_edges() const {
    const int m = num_real();
    std::vector<std::pair<int, int>> out;
    for (const auto& t : tris_) {
      if (!t.alive) continue;
      for (int i = 0; i < 3; ++i) {
        int a = t.v[(i + 1) % 3], b = t.v[(i + 2) % 3];
        if (a >= m || b >= m) continue;
        if (a > b) std::swap(a, b);
        out.emplace_back(a, b);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  int num_real() const { return static_cast<int>(pts_.size()) - 3; }

  void make_super_triangle() {
    double min_x = 0, min_y = 0, max_x = 1, max_y = 1;
    if (!pts_.empty()) {
      min_x = max_x = pts_[0].x;
      min_y = max_y = pts_[0].y;
      for (const auto& p : pts_) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
    }
    const double cx = (min_x + max_x) / 2.0, cy = (min_y + max_y) / 2.0;
    const double r = std::max({max_x - min_x, max_y - min_y, 1.0});
    const double M = 1e6 * r;
    const int s = static_cast<int>(pts_.size());
    pts_.push_back({cx + M, cy - M});
    pts_.push_back({cx, cy + M});
    pts_.push_back({cx - M, cy - M});
    Tri t;
    t.v = {s, s + 1, s + 2};
    if (geom::orient2d_sign(pts_[s], pts_[s + 1], pts_[s + 2]) < 0) {
      std::swap(t.v[1], t.v[2]);
    }
    t.nb = {-1, -1, -1};
    tris_.push_back(t);
    last_ = 0;
  }

  // True if q is strictly inside the circumcircle of alive triangle ti.
  bool in_circumcircle(int ti, const Point& q) const {
    const Tri& t = tris_[ti];
    return geom::incircle_sign(pts_[t.v[0]], pts_[t.v[1]], pts_[t.v[2]], q) >
           0;
  }

  // Walking point location; returns an alive triangle containing p
  // (boundary inclusive), or -1 on failure.
  int locate(const Point& p) const {
    int t = last_;
    if (t < 0 || !tris_[t].alive) {
      t = -1;
      for (int i = static_cast<int>(tris_.size()) - 1; i >= 0; --i) {
        if (tris_[i].alive) {
          t = i;
          break;
        }
      }
      if (t == -1) return -1;
    }
    const int cap = 4 * static_cast<int>(tris_.size()) + 64;
    for (int step = 0; step < cap; ++step) {
      const Tri& tri = tris_[t];
      bool moved = false;
      for (int i = 0; i < 3; ++i) {
        const int a = tri.v[(i + 1) % 3], b = tri.v[(i + 2) % 3];
        if (geom::orient2d_sign(pts_[a], pts_[b], p) < 0) {
          const int nxt = tri.nb[i];
          if (nxt == -1) return -1;  // outside the super-triangle
          t = nxt;
          moved = true;
          break;
        }
      }
      if (!moved) return t;
    }
    // Walk cycled (can happen on wildly degenerate data): linear fallback.
    for (int i = 0; i < static_cast<int>(tris_.size()); ++i) {
      if (!tris_[i].alive) continue;
      const Tri& tri = tris_[i];
      bool inside = true;
      for (int e = 0; e < 3 && inside; ++e) {
        inside = geom::orient2d_sign(pts_[tri.v[(e + 1) % 3]],
                                     pts_[tri.v[(e + 2) % 3]], p) >= 0;
      }
      if (inside) return i;
    }
    return -1;
  }

  bool insert(int pi) {
    const Point& p = pts_[pi];
    const int t0 = locate(p);
    if (t0 == -1) return false;

    // Grow the cavity: all triangles whose circumcircle strictly contains p.
    std::vector<int> cavity{t0};
    std::vector<int> stack{t0};
    in_cavity_.assign(tris_.size(), 0);
    in_cavity_[t0] = 1;
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      for (int i = 0; i < 3; ++i) {
        const int nb = tris_[t].nb[i];
        if (nb == -1 || in_cavity_[nb]) continue;
        if (in_circumcircle(nb, p)) {
          in_cavity_[nb] = 1;
          cavity.push_back(nb);
          stack.push_back(nb);
        }
      }
    }

    // Boundary: directed edges (a, b) of cavity triangles whose opposite
    // neighbour is outside the cavity.
    struct BEdge {
      int a, b, outside;
    };
    std::vector<BEdge> boundary;
    for (int t : cavity) {
      for (int i = 0; i < 3; ++i) {
        const int nb = tris_[t].nb[i];
        if (nb != -1 && in_cavity_[nb]) continue;
        boundary.push_back(
            {tris_[t].v[(i + 1) % 3], tris_[t].v[(i + 2) % 3], nb});
      }
    }
    // Each new triangle (p, a, b) must be ccw; a reflex boundary means the
    // predicate tie-handling produced a non-star cavity — report failure.
    for (const auto& e : boundary) {
      if (geom::orient2d_sign(p, pts_[e.a], pts_[e.b]) <= 0) return false;
    }

    for (int t : cavity) tris_[t].alive = false;
    std::unordered_map<int, int> start_map, end_map;
    std::vector<int> created;
    created.reserve(boundary.size());
    for (const auto& e : boundary) {
      Tri nt;
      nt.v = {pi, e.a, e.b};
      nt.nb = {e.outside, -1, -1};
      const int id = static_cast<int>(tris_.size());
      tris_.push_back(nt);
      in_cavity_.push_back(0);
      created.push_back(id);
      start_map[e.a] = id;
      end_map[e.b] = id;
      // Repair the outside triangle's back-pointer.
      if (e.outside != -1) {
        Tri& o = tris_[e.outside];
        for (int i = 0; i < 3; ++i) {
          const int oa = o.v[(i + 1) % 3], ob = o.v[(i + 2) % 3];
          if (oa == e.b && ob == e.a) {
            o.nb[i] = id;
            break;
          }
        }
      }
    }
    // Fan linkage: edge (b, p) of (p, a, b) meets the triangle starting at b;
    // edge (p, a) meets the triangle ending at a.
    for (int id : created) {
      Tri& t = tris_[id];
      const int a = t.v[1], b = t.v[2];
      const auto it1 = start_map.find(b);
      const auto it2 = end_map.find(a);
      if (it1 == start_map.end() || it2 == end_map.end()) return false;
      t.nb[1] = it1->second;  // edge (v2, v0) = (b, p)
      t.nb[2] = it2->second;  // edge (v0, v1) = (p, a)
    }
    if (!created.empty()) last_ = created.front();
    return true;
  }

  std::vector<Point> pts_;
  std::vector<Tri> tris_;
  std::vector<char> in_cavity_;
  int last_ = -1;
};

}  // namespace

Triangulation triangulate(std::span<const Point> pts) {
  Triangulation out;
  const int n = static_cast<int>(pts.size());
  if (n <= 1) return out;

  // Merge exact duplicates.
  auto key_of = [](const Point& p) {
    std::uint64_t kx, ky;
    std::memcpy(&kx, &p.x, 8);
    std::memcpy(&ky, &p.y, 8);
    return kx * 0x9e3779b97f4a7c15ull ^ (ky + 0x7f4a7c15ull);
  };
  std::unordered_map<std::uint64_t, std::vector<int>> buckets;
  std::vector<int> rep(n, -1);         // original -> representative original
  std::vector<int> unique_of(n, -1);   // original -> unique slot
  std::vector<Point> unique_pts;
  std::vector<int> unique_to_orig;
  for (int i = 0; i < n; ++i) {
    auto& bucket = buckets[key_of(pts[i])];
    int found = -1;
    for (int j : bucket) {
      if (pts[j] == pts[i]) {
        found = j;
        break;
      }
    }
    if (found == -1) {
      bucket.push_back(i);
      rep[i] = i;
      unique_of[i] = static_cast<int>(unique_pts.size());
      unique_pts.push_back(pts[i]);
      unique_to_orig.push_back(i);
    } else {
      rep[i] = found;
      out.edges.emplace_back(std::min(found, i), std::max(found, i));
    }
  }

  if (unique_pts.size() >= 2) {
    Builder b(unique_pts);
    if (!b.run()) {
      out.edges.clear();  // signal failure: caller falls back
      out.triangles.clear();
      return out;
    }
    for (const auto& t : b.real_triangles()) {
      out.triangles.push_back(
          {unique_to_orig[t[0]], unique_to_orig[t[1]], unique_to_orig[t[2]]});
    }
    for (const auto& [a, b2] : b.real_edges()) {
      int u = unique_to_orig[a], v = unique_to_orig[b2];
      if (u > v) std::swap(u, v);
      out.edges.emplace_back(u, v);
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  return out;
}

std::vector<std::pair<int, int>> delaunay_edges(std::span<const Point> pts) {
  return triangulate(pts).edges;
}

}  // namespace dirant::delaunay
