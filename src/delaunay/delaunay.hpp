#pragma once
/// \file delaunay.hpp
/// Delaunay triangulation (Bowyer–Watson with walking point location).
/// Primary consumer: the large-n EMST path (the EMST is a subgraph of the
/// Delaunay graph), as suggested by the reproduction plan ("CGAL aids
/// MST/spanner construction" — this module replaces CGAL).
///
/// Robustness: in-circle and orientation tests go through geometry/exact.hpp
/// (double filter, then float128).  A large finite super-triangle hosts the
/// construction; ties (cocircular points) resolve arbitrarily but
/// deterministically.  For adversarially degenerate inputs the EMST driver
/// cross-checks connectivity and falls back to Prim.

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/point.hpp"

namespace dirant::delaunay {

/// A triangulation result: triangles as index triples (ccw), plus the unique
/// undirected edge list.
struct Triangulation {
  std::vector<std::array<int, 3>> triangles;
  std::vector<std::pair<int, int>> edges;  ///< u < v, unique, unordered list
};

/// Reusable Bowyer–Watson builder.  All working memory (point copy, triangle
/// soup, cavity marks/stacks, insertion order) lives on the object and keeps
/// its capacity across calls, so a warm Triangulator triangulating inputs of
/// stable size allocates nothing — the property core::PlanSession builds on.
/// The duplicate-merge fallback (exact duplicate points in the input) is the
/// one path that still allocates; it only runs on degenerate inputs.
class Triangulator {
 public:
  /// Triangulate `pts` into `out`, recycling `out`'s vectors.  Semantics are
  /// identical to the free function `triangulate`.
  void triangulate(std::span<const geom::Point> pts, Triangulation& out);

 private:
  struct Tri {
    std::array<int, 3> v;   // ccw vertices
    std::array<int, 3> nb;  // nb[i]: triangle across the edge opposite v[i]
    bool alive = true;
  };
  struct BEdge {
    int a, b, outside;
  };

  bool run();  // build over pts_; false on unhandled degeneracy
  void emit(Triangulation& out) const;  // append real triangles + edges
  int num_real() const { return static_cast<int>(pts_.size()) - 3; }
  void make_super_triangle();
  bool in_circumcircle(int ti, const geom::Point& q) const;
  int locate(const geom::Point& p) const;
  bool insert(int pi);

  std::vector<geom::Point> pts_;
  std::vector<Tri> tris_;
  std::vector<std::uint64_t> order_;
  std::vector<std::uint32_t> cavity_mark_;
  std::uint32_t epoch_ = 0;
  std::vector<int> cavity_, stack_, created_;
  std::vector<BEdge> boundary_;
  int last_ = -1;
};

/// Delaunay triangulation of `pts`.  Exact duplicates are merged; every
/// duplicate is connected to its representative by a zero-length edge in
/// `edges` so downstream spanning-tree builders stay connected.
/// Degenerate inputs (all points collinear) yield an edge path and no
/// triangles.
Triangulation triangulate(std::span<const geom::Point> pts);

/// Convenience: just the unique edges (candidate set for Kruskal).
std::vector<std::pair<int, int>> delaunay_edges(
    std::span<const geom::Point> pts);

}  // namespace dirant::delaunay
