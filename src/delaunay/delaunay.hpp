#pragma once
/// \file delaunay.hpp
/// Delaunay triangulation (Bowyer–Watson with walking point location).
/// Primary consumer: the large-n EMST path (the EMST is a subgraph of the
/// Delaunay graph), as suggested by the reproduction plan ("CGAL aids
/// MST/spanner construction" — this module replaces CGAL).
///
/// Robustness: in-circle and orientation tests go through geometry/exact.hpp
/// (double filter, then float128).  A large finite super-triangle hosts the
/// construction; ties (cocircular points) resolve arbitrarily but
/// deterministically.  For adversarially degenerate inputs the EMST driver
/// cross-checks connectivity and falls back to Prim.

#include <array>
#include <span>
#include <utility>
#include <vector>

#include "geometry/point.hpp"

namespace dirant::delaunay {

/// A triangulation result: triangles as index triples (ccw), plus the unique
/// undirected edge list.
struct Triangulation {
  std::vector<std::array<int, 3>> triangles;
  std::vector<std::pair<int, int>> edges;  ///< u < v, unique, unordered list
};

/// Delaunay triangulation of `pts`.  Exact duplicates are merged; every
/// duplicate is connected to its representative by a zero-length edge in
/// `edges` so downstream spanning-tree builders stay connected.
/// Degenerate inputs (all points collinear) yield an edge path and no
/// triangles.
Triangulation triangulate(std::span<const geom::Point> pts);

/// Convenience: just the unique edges (candidate set for Kruskal).
std::vector<std::pair<int, int>> delaunay_edges(
    std::span<const geom::Point> pts);

}  // namespace dirant::delaunay
