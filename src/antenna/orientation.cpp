#include "antenna/orientation.hpp"

#include <algorithm>

namespace dirant::antenna {


double Orientation::spread_sum(int u) const {
  double total = 0.0;
  for (const auto& s : at_[u]) total += s.width;
  return total;
}

double Orientation::max_spread_sum() const {
  double m = 0.0;
  for (int u = 0; u < size(); ++u) m = std::max(m, spread_sum(u));
  return m;
}

int Orientation::max_antennas_per_node() const {
  size_t m = 0;
  for (const auto& list : at_) m = std::max(m, list.size());
  return static_cast<int>(m);
}


}  // namespace dirant::antenna
