#pragma once
/// \file metrics.hpp
/// Interference and coverage metrics motivated by the paper's introduction:
/// a directional beam of spread alpha interferes with ~alpha/2pi of the
/// receivers an omnidirectional antenna of the same range would hit, and
/// Yi–Pei–Kalyanaraman ([19]) credit directional transmission with a
/// sqrt(2*pi/alpha) capacity gain.

#include <span>

#include "antenna/orientation.hpp"

namespace dirant::antenna {

struct InterferenceStats {
  double mean_receivers_per_antenna = 0.0;  ///< nodes inside a beam, averaged
  double max_receivers_per_antenna = 0.0;
  double mean_receivers_omni = 0.0;  ///< same sensors, omnidirectional disk
                                     ///< of each sensor's largest radius
  double interference_reduction = 0.0;  ///< omni / directional (>= 1 is good)
  double mean_spread = 0.0;             ///< average beam width (radians)
  double capacity_gain_model = 0.0;     ///< sqrt(2*pi / mean positive spread)
};

/// Count receivers per beam and compare with omnidirectional disks.
InterferenceStats interference_stats(std::span<const geom::Point> pts,
                                     const Orientation& o);

}  // namespace dirant::antenna
