#include "antenna/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "spatial/grid_index.hpp"

namespace dirant::antenna {

using geom::Point;

InterferenceStats interference_stats(std::span<const Point> pts,
                                     const Orientation& o) {
  InterferenceStats st;
  const int n = static_cast<int>(pts.size());
  if (n == 0 || o.max_radius() <= 0.0) return st;
  spatial::GridIndex grid(pts, std::max(o.max_radius() / 2.0, 1e-12));

  long long beam_hits = 0;
  long long beams = 0;
  long long omni_hits = 0;
  double spread_total = 0.0;
  double spread_positive_total = 0.0;
  long long spread_positive_count = 0;

  for (int u = 0; u < n; ++u) {
    double node_rmax = 0.0;
    for (const auto& s : o.antennas(u)) {
      node_rmax = std::max(node_rmax, s.radius);
      long long hits = 0;
      for (int v : grid.within(pts[u], s.radius + 1e-12, u)) {
        if (s.contains(pts[v])) ++hits;
      }
      beam_hits += hits;
      ++beams;
      spread_total += s.width;
      if (s.width > 0.0) {
        spread_positive_total += s.width;
        ++spread_positive_count;
      }
      st.max_receivers_per_antenna =
          std::max(st.max_receivers_per_antenna, static_cast<double>(hits));
    }
    if (node_rmax > 0.0) {
      omni_hits +=
          static_cast<long long>(grid.within(pts[u], node_rmax, u).size());
    }
  }
  if (beams == 0) return st;
  st.mean_receivers_per_antenna = static_cast<double>(beam_hits) / beams;
  st.mean_receivers_omni = static_cast<double>(omni_hits) / n;
  st.interference_reduction =
      st.mean_receivers_per_antenna > 0.0
          ? st.mean_receivers_omni / st.mean_receivers_per_antenna
          : 0.0;
  st.mean_spread = spread_total / beams;
  const double alpha = spread_positive_count > 0
                           ? spread_positive_total / spread_positive_count
                           : 0.0;
  st.capacity_gain_model = alpha > 0.0 ? std::sqrt(kTwoPi / alpha) : 0.0;
  return st;
}

}  // namespace dirant::antenna
