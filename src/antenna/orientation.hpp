#pragma once
/// \file orientation.hpp
/// The output of every algorithm in core/: an assignment of directional
/// antennae (sectors) to each sensor.

#include <vector>

#include "geometry/sector.hpp"

namespace dirant::antenna {

/// Per-sensor antenna assignment.
class Orientation {
 public:
  explicit Orientation(int n) : at_(n) {}

  int size() const { return static_cast<int>(at_.size()); }

  void add(int u, const geom::Sector& s) { at_[u].push_back(s); }

  const std::vector<geom::Sector>& antennas(int u) const { return at_[u]; }

  /// Largest antenna radius anywhere (the "range" the paper bounds).
  double max_radius() const;

  /// Sum of spreads at sensor `u` (the paper's per-sensor angular budget).
  double spread_sum(int u) const;

  /// max_u spread_sum(u).
  double max_spread_sum() const;

  /// Largest antenna count at any sensor (must be <= the k under test).
  int max_antennas_per_node() const;

  int total_antennas() const;

 private:
  std::vector<std::vector<geom::Sector>> at_;
};

}  // namespace dirant::antenna
