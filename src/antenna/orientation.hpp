#pragma once
/// \file orientation.hpp
/// The output of every algorithm in core/: an assignment of directional
/// antennae (sectors) to each sensor.

#include <cmath>
#include <vector>

#include "geometry/sector.hpp"

namespace dirant::antenna {

/// Unit direction vectors of a sector's two boundary rays, cached when the
/// sector is added so certification never pays per-query trigonometry.
/// Sectors inside an Orientation are immutable (only `add` stores them), so
/// the cache cannot go stale.
struct BoundaryDirs {
  double sx = 0.0, sy = 0.0;  ///< cos/sin of the start boundary direction
  double ex = 0.0, ey = 0.0;  ///< cos/sin of start + width
};

/// Per-sensor antenna assignment.
class Orientation {
 public:
  explicit Orientation(int n) : at_(n), dirs_(n) {}

  int size() const { return static_cast<int>(at_.size()); }

  /// Recycle for a fresh assignment over `n` sensors: per-sensor buckets are
  /// cleared but keep their capacity, and each is pre-reserved to
  /// `reserve_per_node` slots (pass the k under test) so repeated fills
  /// through a warm orientation never allocate.  This is the "output arena"
  /// the PlanSession steady-state contract is built on.
  void reset(int n, int reserve_per_node = 0) {
    at_.resize(n);
    dirs_.resize(n);
    for (auto& list : at_) {
      list.clear();
      if (static_cast<int>(list.capacity()) < reserve_per_node) {
        list.reserve(reserve_per_node);
      }
    }
    for (auto& list : dirs_) {
      list.clear();
      if (static_cast<int>(list.capacity()) < reserve_per_node) {
        list.reserve(reserve_per_node);
      }
    }
    max_radius_ = 0.0;
    total_antennas_ = 0;
  }

  void add(int u, const geom::Sector& s) {
    at_[u].push_back(s);
    BoundaryDirs d;
    d.sx = std::cos(s.start);
    d.sy = std::sin(s.start);
    if (s.width == 0.0) {  // beam: boundary rays coincide
      d.ex = d.sx;
      d.ey = d.sy;
    } else {
      const double end = s.start + s.width;
      d.ex = std::cos(end);
      d.ey = std::sin(end);
    }
    dirs_[u].push_back(d);
    max_radius_ = std::max(max_radius_, s.radius);
    ++total_antennas_;
  }

  const std::vector<geom::Sector>& antennas(int u) const { return at_[u]; }

  /// Boundary directions parallel to `antennas(u)` (same indexing).
  const std::vector<BoundaryDirs>& boundary_dirs(int u) const {
    return dirs_[u];
  }

  /// Largest antenna radius anywhere (the "range" the paper bounds).
  /// Maintained incrementally by `add` — O(1), certification hot path.
  double max_radius() const { return max_radius_; }

  /// Sum of spreads at sensor `u` (the paper's per-sensor angular budget).
  double spread_sum(int u) const;

  /// max_u spread_sum(u).
  double max_spread_sum() const;

  /// Largest antenna count at any sensor (must be <= the k under test).
  int max_antennas_per_node() const;

  /// Maintained incrementally by `add` — O(1).
  int total_antennas() const { return total_antennas_; }

  /// True iff node `ua`'s antenna list is bit-identical to `b`'s node `ub`:
  /// same count, and every sector equal in apex, start, width, and radius
  /// (exact double compares — this is a change-detection primitive, not a
  /// geometric one).  Boundary-ray caches are derived deterministically from
  /// (start, width) at `add` time, so sector equality implies dir equality.
  bool node_equals(int ua, const Orientation& b, int ub) const {
    const auto& sa = at_[ua];
    const auto& sb = b.at_[ub];
    if (sa.size() != sb.size()) return false;
    for (size_t j = 0; j < sa.size(); ++j) {
      const geom::Sector& x = sa[j];
      const geom::Sector& y = sb[j];
      if (x.apex.x != y.apex.x || x.apex.y != y.apex.y ||
          x.start != y.start || x.width != y.width || x.radius != y.radius) {
        return false;
      }
    }
    return true;
  }

  /// Overwrite node `dst_u`'s antenna list with a copy of `src`'s node
  /// `src_u` (sectors and cached boundary dirs — no trigonometry).  Reuses
  /// the destination buckets' capacity, so snapshot maintenance through a
  /// warm orientation is allocation-free once buckets have grown.
  /// `total_antennas` is adjusted by the delta; `max_radius` only ratchets
  /// up (recomputing a shrink would cost O(total sectors) — snapshot
  /// consumers don't read it).
  void copy_node(int dst_u, const Orientation& src, int src_u) {
    const auto& ss = src.at_[src_u];
    total_antennas_ +=
        static_cast<int>(ss.size()) - static_cast<int>(at_[dst_u].size());
    at_[dst_u].assign(ss.begin(), ss.end());
    const auto& sd = src.dirs_[src_u];
    dirs_[dst_u].assign(sd.begin(), sd.end());
    for (const geom::Sector& s : ss) {
      max_radius_ = std::max(max_radius_, s.radius);
    }
  }

  /// Clear node `u`'s antenna list (capacity kept).  Snapshot maintenance
  /// for nodes that leave the alive set.
  void clear_node(int u) {
    total_antennas_ -= static_cast<int>(at_[u].size());
    at_[u].clear();
    dirs_[u].clear();
  }

 private:
  std::vector<std::vector<geom::Sector>> at_;
  std::vector<std::vector<BoundaryDirs>> dirs_;
  double max_radius_ = 0.0;
  int total_antennas_ = 0;
};

}  // namespace dirant::antenna
