#include "antenna/transmission.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/constants.hpp"
#include "parallel/thread_pool.hpp"

namespace dirant::antenna {

using geom::Point;

namespace {

// FlatSector flag bits.
constexpr unsigned kBeam = 1u;  ///< width == 0: pure tolerance-band test
constexpr unsigned kFull = 2u;  ///< width >= 2*pi - tol: all directions
constexpr unsigned kWide = 4u;  ///< width > pi: test the complement wedge

using FlatSector = TransmissionScratch::FlatSector;

// The batch classifier's flag loops live in standalone functions so GCC can
// emit runtime-dispatched clones for the wider x86-64 ISA levels: the
// baseline build keeps working everywhere, while AVX2 machines get 4
// double lanes per op instead of SSE2's 2.  The clone list deliberately
// stops at x86-64-v3: a v4 clone measured SLOWER end to end here (512-bit
// ops trigger frequency downclocking on common server parts, and these
// loops are too short to earn it back).  The clones stay bit-exact with
// the default (and with the scalar oracle) because this translation unit
// is compiled with -ffp-contract=off (see CMakeLists.txt) — without it
// the v3 clone would contract mul+sub into FMA and could flip verdicts on
// the tolerance-band boundary.
// ThreadSanitizer builds must not multiversion: the ifunc resolvers run
// during relocation, before the tsan runtime is initialized, and the
// instrumented resolver segfaults on startup.  The plain (still
// vectorized-at-baseline) loops are what tsan checks — the clones differ
// only in ISA level, not in logic or memory access pattern.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    defined(__ELF__) && !defined(__SANITIZE_THREAD__)
#define DIRANT_VEC_CLONES                                           \
  __attribute__((target_clones("default", "arch=x86-64-v2",        \
                               "arch=x86-64-v3")))
#else
#define DIRANT_VEC_CLONES
#endif

// Each lane function classifies every candidate run of one sector's cell
// window (`runs` holds nrows [begin, end) index pairs into the grid's
// cell-ordered SoA coordinates — one contiguous run per window row) and
// compacts the survivors' grid indices into `out`, returning the count.
// Runs are processed in fixed-size chunks through a stack verdict buffer:
// the first pass fuses the squared-distance filter, the coincident-point
// skip, and the sector accept test into straight-line arithmetic — the
// exact operations the scalar oracle performs, with && / || replaced by
// non-short-circuiting & / | so every lane is branch-free — and the
// second pass is the sparse scalar compress.  Verdicts are 0.0/1.0
// doubles at the same lane width as the compares (what the vectorizer
// needs even at the baseline -march), but they never leave the stack, so
// the only streams a sector pays are the coordinate reads and the (small)
// survivor list.  One call covers the whole sector: dispatch and loop
// prologue cost per sector, not per row.

constexpr int kLaneChunk = 64;

/// kBeam: within the tolerance band of the ray and ahead of it.
DIRANT_VEC_CLONES
int classify_beam_runs(const double* __restrict xs,
                       const double* __restrict ys,
                       const int* __restrict runs, int nrows,
                       int* __restrict out, double ax, double ay,
                       double limit2, double sx, double sy,
                       double band_scale) {
  int cnt = 0;
  double ok[kLaneChunk];
  for (int r = 0; r < nrows; ++r) {
    int k = runs[2 * r];
    const int k_end = runs[2 * r + 1];
    while (k < k_end) {
      const int chunk = k_end - k < kLaneChunk ? k_end - k : kLaneChunk;
      for (int t = 0; t < chunk; ++t) {
        const double dx = xs[k + t] - ax;
        const double dy = ys[k + t] - ay;
        const double d2 = dx * dx + dy * dy;
        const double cs = sx * dy - sy * dx;
        ok[t] = ((d2 <= limit2) & (d2 != 0.0) &
                 (cs * cs <= d2 * band_scale) & (sx * dx + sy * dy > 0.0))
                    ? 1.0
                    : 0.0;
      }
      for (int t = 0; t < chunk; ++t) {
        if (ok[t] != 0.0) out[cnt++] = k + t;
      }
      k += chunk;
    }
  }
  return cnt;
}

/// kFull: every in-range candidate transmits.
DIRANT_VEC_CLONES
int classify_full_runs(const double* __restrict xs,
                       const double* __restrict ys,
                       const int* __restrict runs, int nrows,
                       int* __restrict out, double ax, double ay,
                       double limit2) {
  int cnt = 0;
  double ok[kLaneChunk];
  for (int r = 0; r < nrows; ++r) {
    int k = runs[2 * r];
    const int k_end = runs[2 * r + 1];
    while (k < k_end) {
      const int chunk = k_end - k < kLaneChunk ? k_end - k : kLaneChunk;
      for (int t = 0; t < chunk; ++t) {
        const double dx = xs[k + t] - ax;
        const double dy = ys[k + t] - ay;
        const double d2 = dx * dx + dy * dy;
        ok[t] = ((d2 <= limit2) & (d2 != 0.0)) ? 1.0 : 0.0;
      }
      for (int t = 0; t < chunk; ++t) {
        if (ok[t] != 0.0) out[cnt++] = k + t;
      }
      k += chunk;
    }
  }
  return cnt;
}

/// kWide: in-band of either boundary ray, or NOT in the complement wedge.
DIRANT_VEC_CLONES
int classify_wide_runs(const double* __restrict xs,
                       const double* __restrict ys,
                       const int* __restrict runs, int nrows,
                       int* __restrict out, double ax, double ay,
                       double limit2, double sx, double sy, double ex,
                       double ey, double band_scale) {
  int cnt = 0;
  double ok[kLaneChunk];
  for (int r = 0; r < nrows; ++r) {
    int k = runs[2 * r];
    const int k_end = runs[2 * r + 1];
    while (k < k_end) {
      const int chunk = k_end - k < kLaneChunk ? k_end - k : kLaneChunk;
      for (int t = 0; t < chunk; ++t) {
        const double dx = xs[k + t] - ax;
        const double dy = ys[k + t] - ay;
        const double d2 = dx * dx + dy * dy;
        const double cs = sx * dy - sy * dx;
        const double ce = ex * dy - ey * dx;
        const double band = d2 * band_scale;
        const bool in_band =
            ((cs * cs <= band) & (sx * dx + sy * dy > 0.0)) |
            ((ce * ce <= band) & (ex * dx + ey * dy > 0.0));
        const bool wedge = !((cs < 0.0) & (ce > 0.0));
        ok[t] =
            ((d2 <= limit2) & (d2 != 0.0) & (in_band | wedge)) ? 1.0 : 0.0;
      }
      for (int t = 0; t < chunk; ++t) {
        if (ok[t] != 0.0) out[cnt++] = k + t;
      }
      k += chunk;
    }
  }
  return cnt;
}

/// Narrow sector: in-band of either boundary ray, or inside the wedge.
DIRANT_VEC_CLONES
int classify_narrow_runs(const double* __restrict xs,
                         const double* __restrict ys,
                         const int* __restrict runs, int nrows,
                         int* __restrict out, double ax, double ay,
                         double limit2, double sx, double sy, double ex,
                         double ey, double band_scale) {
  int cnt = 0;
  double ok[kLaneChunk];
  for (int r = 0; r < nrows; ++r) {
    int k = runs[2 * r];
    const int k_end = runs[2 * r + 1];
    while (k < k_end) {
      const int chunk = k_end - k < kLaneChunk ? k_end - k : kLaneChunk;
      for (int t = 0; t < chunk; ++t) {
        const double dx = xs[k + t] - ax;
        const double dy = ys[k + t] - ay;
        const double d2 = dx * dx + dy * dy;
        const double cs = sx * dy - sy * dx;
        const double ce = ex * dy - ey * dx;
        const double band = d2 * band_scale;
        const bool in_band =
            ((cs * cs <= band) & (sx * dx + sy * dy > 0.0)) |
            ((ce * ce <= band) & (ex * dx + ey * dy > 0.0));
        const bool wedge = (cs > 0.0) & (ce < 0.0);
        ok[t] =
            ((d2 <= limit2) & (d2 != 0.0) & (in_band | wedge)) ? 1.0 : 0.0;
      }
      for (int t = 0; t < chunk; ++t) {
        if (ok[t] != 0.0) out[cnt++] = k + t;
      }
      k += chunk;
    }
  }
  return cnt;
}

/// Immutable per-build inputs shared (read-only) by every shard.
struct BuildCtx {
  std::span<const Point> pts;
  const spatial::GridIndex* grid;
  const FlatSector* flat;
  const int* sector_start;  ///< per-node prefix into flat (n+1 entries)
  double exact_band;        ///< sin(angle_tol)^2, the tolerance accept band
  int n;
  bool batch_classifier;    ///< SoA batch loop vs the fused scalar oracle
};

/// Phase 1 for nodes [u_lo, u_hi): flatten every sector into its FlatSector
/// record — apex boundary directions, squared radius limit, clamped grid
/// cell window.  Writes flat[sector_start[u] + j]; disjoint node ranges
/// touch disjoint slices, so shards run this concurrently with no
/// synchronization.  Indexed writes into the pre-sized array: push_back's
/// per-element size bookkeeping stalls this store-heavy loop measurably.
void flatten_range(const Orientation& o, const spatial::GridIndex& grid,
                   std::span<const Point> pts, double angle_tol,
                   double radius_tol, const int* sector_start,
                   FlatSector* flat, int u_lo, int u_hi) {
  const double sin_tol = std::min(std::sin(angle_tol), 1.0);
  // Boxes inflate by the tolerance cone's sideways reach (<= r*sin(tol)),
  // doubled for margin.
  const double pad_scale = 2.0 * sin_tol;
  for (int u = u_lo; u < u_hi; ++u) {
    const auto& antennas = o.antennas(u);
    const auto& dirs = o.boundary_dirs(u);
    for (size_t j = 0; j < antennas.size(); ++j) {
      const auto& s = antennas[j];
      FlatSector f;
      f.u = u;
      const double ax = pts[u].x, ay = pts[u].y;
      f.sx = dirs[j].sx;
      f.sy = dirs[j].sy;
      f.ex = dirs[j].ex;
      f.ey = dirs[j].ey;
      const double limit = s.radius * (1.0 + kRadiusRelTol) + radius_tol;
      f.limit2 = limit * limit;
      const double qr = limit + 1e-12;
      const double pad = qr * pad_scale + 1e-12;
      double lo_x, lo_y, hi_x, hi_y;
      if (s.width == 0.0) {
        f.flags = kBeam;
        const double tx = ax + qr * f.sx, ty = ay + qr * f.sy;
        lo_x = std::min(ax, tx) - pad;
        hi_x = std::max(ax, tx) + pad;
        lo_y = std::min(ay, ty) - pad;
        hi_y = std::max(ay, ty) + pad;
      } else if (s.width >= kTwoPi - angle_tol) {
        f.flags = kFull;
        lo_x = ax - qr;
        hi_x = ax + qr;
        lo_y = ay - qr;
        hi_y = ay + qr;
      } else {
        f.flags = s.width > kPi ? kWide : 0u;
        // Hull of the wedge: apex, both boundary-ray endpoints, and the
        // arc extremes at whichever cardinal directions the wedge spans.
        lo_x = hi_x = ax;
        lo_y = hi_y = ay;
        const auto add = [&](double x, double y) {
          lo_x = std::min(lo_x, x);
          hi_x = std::max(hi_x, x);
          lo_y = std::min(lo_y, y);
          hi_y = std::max(hi_y, y);
        };
        add(ax + qr * f.sx, ay + qr * f.sy);
        add(ax + qr * f.ex, ay + qr * f.ey);
        static constexpr double kCardinal[4][2] = {
            {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
        for (const auto& d : kCardinal) {
          const double cs = f.sx * d[1] - f.sy * d[0];
          const double ce = f.ex * d[1] - f.ey * d[0];
          // Closed (conservative) membership: ties only enlarge the box.
          const bool inside = (f.flags & kWide) ? !(cs < 0.0 && ce > 0.0)
                                                : (cs >= 0.0 && ce <= 0.0);
          if (inside) add(ax + qr * d[0], ay + qr * d[1]);
        }
        lo_x -= pad;
        hi_x += pad;
        lo_y -= pad;
        hi_y += pad;
      }
      f.x_lo = grid.cell_x(lo_x);
      f.x_hi = grid.cell_x(hi_x);
      f.y_lo = grid.cell_y(lo_y);
      f.y_hi = grid.cell_y(hi_y);
      flat[sector_start[u] + static_cast<int>(j)] = f;
    }
  }
}

/// Phase 2 for nodes [u_lo, u_hi): scan each sector's cell window, classify
/// candidates by cross products, emit deduped rows.  Targets append into
/// `targets` (indexed writes with doubling growth — shrunk to the emitted
/// count on return) and the cumulative in-chunk edge count after each
/// node's row lands in row_end[u - u_lo].  Returns the chunk's edge count.
///
/// This is the whole per-row computation: it depends only on the read-only
/// BuildCtx and the node index, never on which chunk it runs in — the
/// property the sharded build's bit-identity rests on.
///
/// Two classifier bodies share the surrounding scan (BuildCtx selects):
///   * kBatch (default): one lane-function call per sector classifies the
///     window's row runs in place over the grid's cell-ordered SoA
///     coordinates — branch-light per-flags loops the compiler
///     autovectorizes under -O3 (runtime-dispatched to wider ISA levels
///     via target_clones) — and hands back compact survivor indices for
///     the scalar dedup pass.  Windows of at most kBatchMinWindow
///     candidates take the fused per-candidate path instead: a lane call
///     cannot amortize its dispatch over a handful of lanes.
///   * kScalar: the original fused per-candidate path (classification
///     inlined in the window callback), kept as the equivalence oracle.
/// Both run THE SAME accept arithmetic on the same candidates in the same
/// order, so the emitted CSR is bit-identical (enforced by
/// tests/test_csr_equivalence.cpp).
///
/// Dedup strategy: geometry tests run first (they reject almost every
/// candidate); only ACCEPTED candidates pay dedup.  Rows are short, so a
/// linear scan of the row under construction beats the seen[] array's
/// random memory access — seen[] marks take over only if a row grows past
/// the threshold (dense overlapping sectors), and are wiped again
/// afterwards so the array stays all-zero between rows and calls.
int classify_range(const BuildCtx& ctx, int u_lo, int u_hi,
                   std::vector<char>& seen, std::vector<int>& targets,
                   TransmissionScratch::SectorBatch& batch, int* row_end) {
  constexpr int kLinearDedup = 48;
  // Windows at or below this many candidates skip the lane call; matches
  // the short-run threshold in GridIndex::scan_window_r2.
  constexpr int kBatchMinWindow = 16;
  if (targets.capacity() < 1024) targets.reserve(1024);
  targets.resize(targets.capacity());  // emitted via indexed writes below
  int tgt_count = 0;
  for (int u = u_lo; u < u_hi; ++u) {
    const int row_begin = tgt_count;
    bool row_marked = false;  // true once this row's entries are in seen[]
    const int s_lo = ctx.sector_start[u];
    const int s_hi = ctx.sector_start[u + 1];
    for (int fi = s_lo; fi < s_hi; ++fi) {
      const FlatSector& f = ctx.flat[fi];
      const bool first_sector = fi == s_lo;

      // Dedup + append for one accepted candidate.  A sector never accepts
      // v twice (each window cell is scanned once), so dedup is only
      // needed against EARLIER sectors' rows.
      const auto emit = [&](int v) {
        if (!first_sector) {
          if (row_marked) {
            if (seen[v]) return;
            seen[v] = 1;
          } else if (tgt_count - row_begin <= kLinearDedup) {
            for (int k = row_begin; k < tgt_count; ++k) {
              if (targets[k] == v) return;
            }
          } else {
            if (static_cast<int>(seen.size()) < ctx.n) {
              seen.assign(ctx.n, 0);
            }
            for (int k = row_begin; k < tgt_count; ++k) {
              seen[targets[k]] = 1;
            }
            // Flag BEFORE the duplicate test: returning without it would
            // leak the marks just written past this row's wipe.
            row_marked = true;
            if (seen[v]) return;
            seen[v] = 1;
          }
        }
        if (tgt_count == static_cast<int>(targets.size())) {
          targets.resize(targets.size() * 2);
        }
        targets[tgt_count++] = v;
      };

      // When the batch classifier is on, collect the window's row runs
      // up front (three CSR lookups per row — cheap) so tiny windows can
      // fall back to the fused per-candidate path below: a lane call
      // cannot amortize its dispatch and prologue over a handful of
      // candidates, the same reason scan_window_r2 special-cases short
      // runs.  Both classifiers are bit-identical, so the cutover is
      // invisible in the output.
      int m = 0;
      if (ctx.batch_classifier) {
        batch.runs.clear();
        for (int y = f.y_lo; y <= f.y_hi; ++y) {
          const auto [k0, k1] = ctx.grid->row_run(y, f.x_lo, f.x_hi);
          if (k1 <= k0) continue;
          batch.runs.push_back(k0);
          batch.runs.push_back(k1);
          m += k1 - k0;
        }
        if (m == 0) continue;
      }

      if (!ctx.batch_classifier || m <= kBatchMinWindow) {
        // ---- kScalar: fused per-candidate classification (the oracle).
        // The window scan filters by limit2 directly (no separate query
        // radius), and self-exclusion rides on the d2 == 0 coincidence
        // check, so no per-hit exclude compare is needed.
        ctx.grid->for_each_in_cell_window(
            ctx.pts[u], f.limit2, f.x_lo, f.x_hi, f.y_lo, f.y_hi,
            /*exclude=*/-1, [&](int v, double dx, double dy, double d2) {
              if (d2 == 0.0) return;  // coincident point: no direction
              bool ok;
              const double cs = f.sx * dy - f.sy * dx;
              if (f.flags & kBeam) {
                // |cross| = |v| sin(angle to ray): within tolerance iff
                // the cross is tiny and the dot positive.
                ok = cs * cs <= d2 * ctx.exact_band &&
                     f.sx * dx + f.sy * dy > 0.0;
              } else if (f.flags & kFull) {
                ok = true;
              } else {
                const double ce = f.ex * dy - f.ey * dx;
                const double band = d2 * ctx.exact_band;
                // The tolerance-accept region is the wedge PLUS the
                // tol-band around each boundary ray, so a candidate inside
                // either band is accepted outright (MST orientations aim
                // sector boundaries exactly at neighbours, making this the
                // common accept path); outside the bands the strict cross
                // tests decide exactly.
                if ((cs * cs <= band && f.sx * dx + f.sy * dy > 0.0) ||
                    (ce * ce <= band && f.ex * dx + f.ey * dy > 0.0)) {
                  ok = true;
                } else {
                  ok = (f.flags & kWide) ? !(cs < 0.0 && ce > 0.0)
                                         : (cs > 0.0 && ce < 0.0);
                }
              }
              if (ok) emit(v);
            });
        continue;
      }

      // ---- kBatch: classify the window in place over the grid's -------
      // cell-ordered SoA coordinates.  No gather: each grid row of the
      // sector's cell window is one contiguous run of xs/ys; the run list
      // is collected once, then a single lane-function call classifies
      // every run and hands back the compact survivor indices.  Rows and
      // in-row indices advance in the same order the scalar oracle scans,
      // so the emit order — and with it the CSR — is bit-identical.
      const double ax = ctx.pts[u].x, ay = ctx.pts[u].y;
      const double sx = f.sx, sy = f.sy, ex = f.ex, ey = f.ey;
      const double band_scale = ctx.exact_band;
      const double* gx = ctx.grid->xs();
      const double* gy = ctx.grid->ys();
      const int* gid = ctx.grid->ids();
      if (static_cast<int>(batch.hits.size()) < m) batch.hits.resize(m);
      const int* runs = batch.runs.data();
      const int nrows = static_cast<int>(batch.runs.size()) / 2;
      int* hits = batch.hits.data();
      int cnt;
      if (f.flags & kBeam) {
        cnt = classify_beam_runs(gx, gy, runs, nrows, hits, ax, ay,
                                 f.limit2, sx, sy, band_scale);
      } else if (f.flags & kFull) {
        cnt = classify_full_runs(gx, gy, runs, nrows, hits, ax, ay,
                                 f.limit2);
      } else if (f.flags & kWide) {
        cnt = classify_wide_runs(gx, gy, runs, nrows, hits, ax, ay,
                                 f.limit2, sx, sy, ex, ey, band_scale);
      } else {
        cnt = classify_narrow_runs(gx, gy, runs, nrows, hits, ax, ay,
                                   f.limit2, sx, sy, ex, ey, band_scale);
      }
      for (int i = 0; i < cnt; ++i) emit(gid[hits[i]]);
    }
    if (row_marked) {  // wipe the marks so seen[] stays all-zero
      for (int k = row_begin; k < tgt_count; ++k) seen[targets[k]] = 0;
    }
    row_end[u - u_lo] = tgt_count;
  }
  targets.resize(tgt_count);
  return tgt_count;
}

/// Run `body(s)` for s in [0, count): one run_job index per shard on `pool`
/// when it can actually run them concurrently, inline otherwise.  Inline
/// execution takes the exact same sharded code path — only the interleaving
/// differs, and no shard reads another shard's writes, so the choice is
/// invisible in the output.  run_job's fixed-slot fan-out allocates nothing,
/// so a warm pooled build is as allocation-free as the serial one.
template <typename F>
void for_each_shard(par::ThreadPool* pool, int count, F&& body) {
  par::run_indexed(pool, count, body);
}

}  // namespace

graph::Digraph induced_digraph(std::span<const Point> pts,
                               const Orientation& o, double angle_tol,
                               double radius_tol) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT(o.size() == n);
  std::vector<int> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<int> targets;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      for (const auto& s : o.antennas(u)) {
        if (s.contains(pts[v], angle_tol, radius_tol)) {
          targets.push_back(v);
          break;
        }
      }
    }
    offsets.push_back(static_cast<int>(targets.size()));
  }
  return graph::Digraph(std::move(offsets), std::move(targets));
}

graph::Digraph induced_digraph_fast(std::span<const Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol) {
  TransmissionScratch scratch;
  return induced_digraph_fast(pts, o, angle_tol, radius_tol, scratch);
}

/// Two-phase grid pipeline.  Phase 1 flattens every sector into a
/// struct-of-array record: apex, cached boundary-ray directions (from
/// Orientation::add — no per-query trigonometry), squared radius limit, and
/// the clamped grid-cell window of the sector's bounding box (a zero-width
/// beam's window is just the cells along its ray, not the whole disk
/// square).  Phase 2 scans those windows in node order and classifies
/// candidates by cross products against the boundary directions — an atan2
/// only for candidates inside the thin angular tolerance band of a proper
/// sector's boundary (the equivalence with `Sector::contains` is exact
/// outside that band; for beams the band test IS the containment test,
/// identical up to ~1e-16 rounding at the 1e-9 tolerance boundary).
///
/// `threads > 1` shards both phases over contiguous node ranges (balanced
/// by sector count); each shard classifies into its own row chunk and a
/// deterministic prefix-sum stitch concatenates the chunks into the final
/// CSR — bit-identical to the serial build for every shard count.
graph::Digraph induced_digraph_fast(std::span<const Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol,
                                    TransmissionScratch& scratch, int threads,
                                    par::ThreadPool* pool) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT(o.size() == n);
  auto& offsets = scratch.offsets;
  auto& targets = scratch.targets;
  offsets.clear();
  targets.clear();
  const double rmax = o.max_radius();
  if (n == 0 || rmax <= 0.0) {
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    return graph::Digraph(std::move(offsets), std::move(targets));
  }
  scratch.grid.rebuild(pts, std::max(rmax / 3.0, 1e-12));
  const spatial::GridIndex& grid = scratch.grid;
  auto& seen = scratch.seen;

  // The cross-product classifier assumes a small tolerance cone; callers
  // probing with huge angular tolerances take the exact test per candidate.
  // Rare probing path — always serial.
  if (angle_tol > 0.5) {
    offsets.reserve(static_cast<size_t>(n) + 1);
    offsets.push_back(0);
    seen.assign(n, 0);
    auto& candidates = scratch.candidates;
    for (int u = 0; u < n; ++u) {
      const int row_begin = static_cast<int>(targets.size());
      for (const auto& s : o.antennas(u)) {
        candidates.clear();
        // Query out to the same limit `contains` grants (relative +
        // absolute slack), so no tolerance-accepted candidate is missed.
        grid.within(pts[u],
                    s.radius * (1.0 + kRadiusRelTol) + radius_tol + 1e-12, u,
                    candidates);
        for (int v : candidates) {
          if (seen[v]) continue;
          if (s.contains(pts[v], angle_tol, radius_tol)) {
            seen[v] = 1;
            targets.push_back(v);
          }
        }
      }
      for (int k = row_begin; k < static_cast<int>(targets.size()); ++k) {
        seen[targets[k]] = 0;
      }
      offsets.push_back(static_cast<int>(targets.size()));
    }
    return graph::Digraph(std::move(offsets), std::move(targets));
  }

  const double sin_tol = std::min(std::sin(angle_tol), 1.0);

  // Per-node sector prefix (the flat array's row index): phase 1 writes and
  // phase 2 reads through it, and the shard boundaries balance on it.
  auto& sector_start = scratch.sector_start;
  sector_start.resize(static_cast<size_t>(n) + 1);
  sector_start[0] = 0;
  for (int u = 0; u < n; ++u) {
    sector_start[u + 1] =
        sector_start[u] + static_cast<int>(o.antennas(u).size());
  }
  const int total_sectors = sector_start[n];
  auto& flat = scratch.flat;
  if (static_cast<int>(flat.size()) < total_sectors) {
    flat.resize(total_sectors);
  }

  const BuildCtx ctx{
      pts,          &grid,
      flat.data(),  sector_start.data(),
      sin_tol * sin_tol, n,
      scratch.classifier == TransmissionScratch::Classifier::kBatch};

  const int shard_count = std::clamp(threads, 1, std::max(1, n));
  if (shard_count <= 1) {
    // ---- Serial build: rows stream straight into the final CSR ---------
    offsets.resize(static_cast<size_t>(n) + 1);
    offsets[0] = 0;
    flatten_range(o, grid, pts, angle_tol, radius_tol, sector_start.data(),
                  flat.data(), 0, n);
    classify_range(ctx, 0, n, seen, targets, scratch.batch,
                   offsets.data() + 1);
    return graph::Digraph(std::move(offsets), std::move(targets));
  }

  // ---- Sharded build -------------------------------------------------
  // Contiguous node ranges, boundaries balanced by sector count (the unit
  // of phase-2 work).  Boundaries depend only on (sector_start, threads),
  // never on the pool, and the output does not depend on the boundaries at
  // all — every row is computed by classify_range the same way regardless
  // of which chunk holds it.
  auto& shards = scratch.shards;
  if (static_cast<int>(shards.size()) < shard_count) {
    shards.resize(shard_count);
  }
  int prev = 0;
  for (int s = 0; s < shard_count; ++s) {
    const long long want =
        static_cast<long long>(total_sectors) * (s + 1) / shard_count;
    int hi = s + 1 == shard_count
                 ? n
                 : static_cast<int>(
                       std::lower_bound(sector_start.data() + prev,
                                        sector_start.data() + n,
                                        static_cast<int>(want)) -
                       sector_start.data());
    hi = std::clamp(hi, prev, n);
    shards[s].node_lo = prev;
    shards[s].node_hi = hi;
    prev = hi;
  }

  for_each_shard(pool, shard_count, [&](int s) {
    auto& shard = shards[s];
    const int lo = shard.node_lo, hi = shard.node_hi;
    shard.row_end.resize(static_cast<size_t>(hi - lo));
    flatten_range(o, grid, pts, angle_tol, radius_tol, sector_start.data(),
                  flat.data(), lo, hi);
    shard.edge_count =
        classify_range(ctx, lo, hi, shard.seen, shard.targets, shard.batch,
                       shard.row_end.data());
  });

  // ---- Deterministic prefix-sum stitch -------------------------------
  // Chunk bases are the exclusive prefix sums of the shard edge counts;
  // each shard then finalizes its slice of offsets/targets independently
  // (disjoint writes, so the copy fans out over the same pool).
  offsets.resize(static_cast<size_t>(n) + 1);
  offsets[0] = 0;
  int total_edges = 0;
  for (int s = 0; s < shard_count; ++s) {
    shards[s].base = total_edges;
    total_edges += shards[s].edge_count;
  }
  targets.resize(static_cast<size_t>(total_edges));
  for_each_shard(pool, shard_count, [&](int s) {
    const auto& shard = shards[s];
    const int base = shard.base;
    for (int u = shard.node_lo; u < shard.node_hi; ++u) {
      offsets[u + 1] = base + shard.row_end[u - shard.node_lo];
    }
    if (shard.edge_count > 0) {
      std::memcpy(targets.data() + base, shard.targets.data(),
                  static_cast<size_t>(shard.edge_count) * sizeof(int));
    }
  });
  return graph::Digraph(std::move(offsets), std::move(targets));
}

bool sector_accepts(std::span<const Point> pts, const Orientation& o, int u,
                    int v, double angle_tol, double radius_tol) {
  const double dx = pts[v].x - pts[u].x;
  const double dy = pts[v].y - pts[u].y;
  const double d2 = dx * dx + dy * dy;
  if (d2 == 0.0) return false;  // coincident point: no direction
  const auto& antennas = o.antennas(u);
  if (angle_tol > 0.5) {  // huge-tolerance probing path: exact test
    for (const auto& s : antennas) {
      if (s.contains(pts[v], angle_tol, radius_tol)) return true;
    }
    return false;
  }
  const double sin_tol = std::min(std::sin(angle_tol), 1.0);
  const double exact_band = sin_tol * sin_tol;
  const auto& dirs = o.boundary_dirs(u);
  for (size_t j = 0; j < antennas.size(); ++j) {
    const auto& s = antennas[j];
    const double limit = s.radius * (1.0 + kRadiusRelTol) + radius_tol;
    if (d2 > limit * limit) continue;
    const double sx = dirs[j].sx, sy = dirs[j].sy;
    const double cs = sx * dy - sy * dx;
    if (s.width == 0.0) {  // kBeam
      if (cs * cs <= d2 * exact_band && sx * dx + sy * dy > 0.0) return true;
      continue;
    }
    if (s.width >= kTwoPi - angle_tol) return true;  // kFull
    const double ex = dirs[j].ex, ey = dirs[j].ey;
    const double ce = ex * dy - ey * dx;
    const double band = d2 * exact_band;
    if ((cs * cs <= band && sx * dx + sy * dy > 0.0) ||
        (ce * ce <= band && ex * dx + ey * dy > 0.0)) {
      return true;
    }
    const bool wide = s.width > kPi;
    if (wide ? !(cs < 0.0 && ce > 0.0) : (cs > 0.0 && ce < 0.0)) return true;
  }
  return false;
}

graph::Digraph unit_disk_digraph(std::span<const Point> pts, double radius) {
  TransmissionScratch scratch;
  return unit_disk_digraph(pts, radius, scratch);
}

graph::Digraph unit_disk_digraph(std::span<const Point> pts, double radius,
                                 TransmissionScratch& scratch) {
  const int n = static_cast<int>(pts.size());
  auto& offsets = scratch.offsets;
  auto& targets = scratch.targets;
  targets.clear();
  if (n == 0 || radius <= 0.0) {
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    return graph::Digraph(std::move(offsets), std::move(targets));
  }
  scratch.grid.rebuild(pts, std::max(radius / 2.0, 1e-12));
  offsets.clear();
  offsets.push_back(0);
  for (int u = 0; u < n; ++u) {
    scratch.grid.within(pts[u], radius, u, targets);  // appends u's row
    offsets.push_back(static_cast<int>(targets.size()));
  }
  return graph::Digraph(std::move(offsets), std::move(targets));
}

}  // namespace dirant::antenna
