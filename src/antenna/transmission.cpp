#include "antenna/transmission.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "spatial/grid_index.hpp"

namespace dirant::antenna {

using geom::Point;

graph::Digraph induced_digraph(std::span<const Point> pts,
                               const Orientation& o, double angle_tol,
                               double radius_tol) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT(o.size() == n);
  graph::Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      for (const auto& s : o.antennas(u)) {
        if (s.contains(pts[v], angle_tol, radius_tol)) {
          g.add_edge(u, v);
          break;
        }
      }
    }
  }
  return g;
}

graph::Digraph induced_digraph_fast(std::span<const Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT(o.size() == n);
  graph::Digraph g(n);
  if (n == 0) return g;
  double rmax = o.max_radius();
  if (rmax <= 0.0) return g;
  spatial::GridIndex grid(pts, std::max(rmax / 2.0, 1e-12));
  std::vector<char> seen(n, 0);
  std::vector<int> touched;
  std::vector<int> candidates;  // reused across all range queries
  for (int u = 0; u < n; ++u) {
    touched.clear();
    for (const auto& s : o.antennas(u)) {
      candidates.clear();
      grid.within(pts[u], s.radius + radius_tol + 1e-12, u, candidates);
      for (int v : candidates) {
        if (seen[v]) continue;
        if (s.contains(pts[v], angle_tol, radius_tol)) {
          seen[v] = 1;
          touched.push_back(v);
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int v : touched) {
      g.add_edge(u, v);
      seen[v] = 0;
    }
  }
  return g;
}

graph::Digraph unit_disk_digraph(std::span<const Point> pts, double radius) {
  const int n = static_cast<int>(pts.size());
  graph::Digraph g(n);
  if (n == 0 || radius <= 0.0) return g;
  spatial::GridIndex grid(pts, std::max(radius / 2.0, 1e-12));
  std::vector<int> nb;  // reused across queries
  for (int u = 0; u < n; ++u) {
    nb.clear();
    grid.within(pts[u], radius, u, nb);
    std::sort(nb.begin(), nb.end());
    for (int v : nb) g.add_edge(u, v);
  }
  return g;
}

}  // namespace dirant::antenna
