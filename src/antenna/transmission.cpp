#include "antenna/transmission.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/constants.hpp"
#include "spatial/grid_index.hpp"

namespace dirant::antenna {

using geom::Point;

namespace {

// FlatSector flag bits.
constexpr unsigned kBeam = 1u;  ///< width == 0: pure tolerance-band test
constexpr unsigned kFull = 2u;  ///< width >= 2*pi - tol: all directions
constexpr unsigned kWide = 4u;  ///< width > pi: test the complement wedge

}  // namespace

graph::Digraph induced_digraph(std::span<const Point> pts,
                               const Orientation& o, double angle_tol,
                               double radius_tol) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT(o.size() == n);
  std::vector<int> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  std::vector<int> targets;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      for (const auto& s : o.antennas(u)) {
        if (s.contains(pts[v], angle_tol, radius_tol)) {
          targets.push_back(v);
          break;
        }
      }
    }
    offsets.push_back(static_cast<int>(targets.size()));
  }
  return graph::Digraph(std::move(offsets), std::move(targets));
}

graph::Digraph induced_digraph_fast(std::span<const Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol) {
  TransmissionScratch scratch;
  return induced_digraph_fast(pts, o, angle_tol, radius_tol, scratch);
}

/// Two-phase grid pipeline.  Phase 1 flattens every sector into a
/// struct-of-array record: apex, cached boundary-ray directions (from
/// Orientation::add — no per-query trigonometry), squared radius limit, and
/// the clamped grid-cell window of the sector's bounding box (a zero-width
/// beam's window is just the cells along its ray, not the whole disk
/// square).  Phase 2 streams those records in source order, scans each
/// window, and classifies candidates by cross products against the boundary
/// directions — an atan2 only for candidates inside the thin angular
/// tolerance band of a proper sector's boundary (the equivalence with
/// `Sector::contains` is exact outside that band; for beams the band test
/// IS the containment test, identical up to ~1e-16 rounding at the 1e-9
/// tolerance boundary).  Sources ascend, so rows stream straight into CSR.
graph::Digraph induced_digraph_fast(std::span<const Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol,
                                    TransmissionScratch& scratch) {
  const int n = static_cast<int>(pts.size());
  DIRANT_ASSERT(o.size() == n);
  auto& offsets = scratch.offsets;
  auto& targets = scratch.targets;
  offsets.clear();
  offsets.reserve(static_cast<size_t>(n) + 1);
  offsets.push_back(0);
  targets.clear();
  const double rmax = o.max_radius();
  if (n == 0 || rmax <= 0.0) {
    offsets.resize(static_cast<size_t>(n) + 1, 0);
    return graph::Digraph(std::move(offsets), std::move(targets));
  }
  spatial::GridIndex grid(pts, std::max(rmax / 3.0, 1e-12));
  auto& seen = scratch.seen;

  // The cross-product classifier assumes a small tolerance cone; callers
  // probing with huge angular tolerances take the exact test per candidate.
  if (angle_tol > 0.5) {
    seen.assign(n, 0);
    auto& candidates = scratch.candidates;
    for (int u = 0; u < n; ++u) {
      const int row_begin = static_cast<int>(targets.size());
      for (const auto& s : o.antennas(u)) {
        candidates.clear();
        // Query out to the same limit `contains` grants (relative +
        // absolute slack), so no tolerance-accepted candidate is missed.
        grid.within(pts[u],
                    s.radius * (1.0 + kRadiusRelTol) + radius_tol + 1e-12, u,
                    candidates);
        for (int v : candidates) {
          if (seen[v]) continue;
          if (s.contains(pts[v], angle_tol, radius_tol)) {
            seen[v] = 1;
            targets.push_back(v);
          }
        }
      }
      for (int k = row_begin; k < static_cast<int>(targets.size()); ++k) {
        seen[targets[k]] = 0;
      }
      offsets.push_back(static_cast<int>(targets.size()));
    }
    return graph::Digraph(std::move(offsets), std::move(targets));
  }

  const double sin_tol = std::min(std::sin(angle_tol), 1.0);
  const double exact_band = sin_tol * sin_tol;
  // Boxes inflate by the tolerance cone's sideways reach (<= r*sin(tol)),
  // doubled for margin.
  const double pad_scale = 2.0 * sin_tol;

  // ---- Phase 1: flatten sectors + compute cell windows -----------------
  // Indexed writes into a pre-sized array: push_back's per-element size
  // bookkeeping stalls this store-heavy loop measurably.
  using FlatSector = TransmissionScratch::FlatSector;
  auto& flat = scratch.flat;
  const size_t total_sectors = static_cast<size_t>(o.total_antennas());
  if (flat.size() < total_sectors) flat.resize(total_sectors);
  size_t flat_count = 0;
  for (int u = 0; u < n; ++u) {
    const auto& antennas = o.antennas(u);
    const auto& dirs = o.boundary_dirs(u);
    for (size_t j = 0; j < antennas.size(); ++j) {
      const auto& s = antennas[j];
      FlatSector f;
      f.u = u;
      const double ax = pts[u].x, ay = pts[u].y;
      f.sx = dirs[j].sx;
      f.sy = dirs[j].sy;
      f.ex = dirs[j].ex;
      f.ey = dirs[j].ey;
      const double limit = s.radius * (1.0 + kRadiusRelTol) + radius_tol;
      f.limit2 = limit * limit;
      const double qr = limit + 1e-12;
      const double pad = qr * pad_scale + 1e-12;
      double lo_x, lo_y, hi_x, hi_y;
      if (s.width == 0.0) {
        f.flags = kBeam;
        const double tx = ax + qr * f.sx, ty = ay + qr * f.sy;
        lo_x = std::min(ax, tx) - pad;
        hi_x = std::max(ax, tx) + pad;
        lo_y = std::min(ay, ty) - pad;
        hi_y = std::max(ay, ty) + pad;
      } else if (s.width >= kTwoPi - angle_tol) {
        f.flags = kFull;
        lo_x = ax - qr;
        hi_x = ax + qr;
        lo_y = ay - qr;
        hi_y = ay + qr;
      } else {
        f.flags = s.width > kPi ? kWide : 0u;
        // Hull of the wedge: apex, both boundary-ray endpoints, and the
        // arc extremes at whichever cardinal directions the wedge spans.
        lo_x = hi_x = ax;
        lo_y = hi_y = ay;
        const auto add = [&](double x, double y) {
          lo_x = std::min(lo_x, x);
          hi_x = std::max(hi_x, x);
          lo_y = std::min(lo_y, y);
          hi_y = std::max(hi_y, y);
        };
        add(ax + qr * f.sx, ay + qr * f.sy);
        add(ax + qr * f.ex, ay + qr * f.ey);
        static constexpr double kCardinal[4][2] = {
            {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
        for (const auto& d : kCardinal) {
          const double cs = f.sx * d[1] - f.sy * d[0];
          const double ce = f.ex * d[1] - f.ey * d[0];
          // Closed (conservative) membership: ties only enlarge the box.
          const bool inside = (f.flags & kWide) ? !(cs < 0.0 && ce > 0.0)
                                                : (cs >= 0.0 && ce <= 0.0);
          if (inside) add(ax + qr * d[0], ay + qr * d[1]);
        }
        lo_x -= pad;
        hi_x += pad;
        lo_y -= pad;
        hi_y += pad;
      }
      f.x_lo = grid.cell_x(lo_x);
      f.x_hi = grid.cell_x(hi_x);
      f.y_lo = grid.cell_y(lo_y);
      f.y_hi = grid.cell_y(hi_y);
      flat[flat_count++] = f;
    }
  }

  // ---- Phase 2: scan windows, classify, emit CSR rows ------------------
  // Dedup strategy: geometry tests run first (they reject almost every
  // candidate with arithmetic already in registers); only ACCEPTED
  // candidates pay dedup.  Rows are short, so a linear scan of the row
  // under construction beats the seen[] array's random memory access —
  // seen[] marks take over only if a row grows past the threshold (dense
  // overlapping sectors), and are wiped again afterwards so the array
  // stays all-zero between rows and calls.
  constexpr int kLinearDedup = 48;
  if (targets.capacity() < 1024) targets.reserve(1024);
  targets.resize(targets.capacity());  // emitted via indexed writes below
  offsets.resize(static_cast<size_t>(n) + 1);  // offsets[0] == 0 already
  int tgt_count = 0;
  int cur_u = 0;
  int row_begin = 0;
  int sector_of_row = 0;    // index of the current sector within its row
  bool row_marked = false;  // true once this row's entries are in seen[]
  const auto close_rows_until = [&](int next_u) {
    // Emit offsets for cur_u and any sector-less vertices before next_u.
    while (cur_u < next_u) {
      if (row_marked) {  // wipe the marks so seen[] stays all-zero
        for (int k = row_begin; k < tgt_count; ++k) seen[targets[k]] = 0;
        row_marked = false;
      }
      offsets[++cur_u] = tgt_count;
      row_begin = tgt_count;
      sector_of_row = 0;
    }
  };
  for (size_t fi = 0; fi < flat_count; ++fi) {
    const FlatSector& f = flat[fi];
    close_rows_until(f.u);
    const bool first_sector = sector_of_row++ == 0;
    // The window scan filters by limit2 directly (no separate query
    // radius), and self-exclusion rides on the d2 == 0 coincidence check,
    // so no per-hit exclude compare is needed.
    grid.for_each_in_cell_window(
        pts[f.u], f.limit2, f.x_lo, f.x_hi, f.y_lo, f.y_hi, /*exclude=*/-1,
        [&](int v, double dx, double dy, double d2) {
          if (d2 == 0.0) return;  // coincident point: no direction
          bool ok;
          const double cs = f.sx * dy - f.sy * dx;
          if (f.flags & kBeam) {
            // |cross| = |v| sin(angle to ray): within tolerance iff the
            // cross is tiny and the dot positive.
            ok = cs * cs <= d2 * exact_band && f.sx * dx + f.sy * dy > 0.0;
          } else if (f.flags & kFull) {
            ok = true;
          } else {
            const double ce = f.ex * dy - f.ey * dx;
            const double band = d2 * exact_band;
            // The tolerance-accept region is the wedge PLUS the tol-band
            // around each boundary ray, so a candidate inside either band
            // is accepted outright (MST orientations aim sector boundaries
            // exactly at neighbours, making this the common accept path);
            // outside the bands the strict cross tests decide exactly.
            if ((cs * cs <= band && f.sx * dx + f.sy * dy > 0.0) ||
                (ce * ce <= band && f.ex * dx + f.ey * dy > 0.0)) {
              ok = true;
            } else {
              ok = (f.flags & kWide) ? !(cs < 0.0 && ce > 0.0)
                                     : (cs > 0.0 && ce < 0.0);
            }
          }
          if (!ok) return;
          // A sector never accepts v twice (each window cell is scanned
          // once), so dedup is only needed against EARLIER sectors' rows.
          if (!first_sector) {
            if (row_marked) {
              if (seen[v]) return;
              seen[v] = 1;
            } else if (tgt_count - row_begin <= kLinearDedup) {
              for (int k = row_begin; k < tgt_count; ++k) {
                if (targets[k] == v) return;
              }
            } else {
              if (static_cast<int>(seen.size()) < n) seen.assign(n, 0);
              for (int k = row_begin; k < tgt_count; ++k) {
                seen[targets[k]] = 1;
              }
              // Flag BEFORE the duplicate test: returning without it would
              // leak the marks just written past this row's wipe.
              row_marked = true;
              if (seen[v]) return;
              seen[v] = 1;
            }
          }
          if (tgt_count == static_cast<int>(targets.size())) {
            targets.resize(targets.size() * 2);
          }
          targets[tgt_count++] = v;
        });
  }
  close_rows_until(n);
  targets.resize(tgt_count);
  return graph::Digraph(std::move(offsets), std::move(targets));
}

graph::Digraph unit_disk_digraph(std::span<const Point> pts, double radius) {
  const int n = static_cast<int>(pts.size());
  std::vector<int> offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<int> targets;
  if (n == 0 || radius <= 0.0) {
    return graph::Digraph(std::move(offsets), std::move(targets));
  }
  spatial::GridIndex grid(pts, std::max(radius / 2.0, 1e-12));
  offsets.clear();
  offsets.push_back(0);
  for (int u = 0; u < n; ++u) {
    grid.within(pts[u], radius, u, targets);  // appends u's row in place
    offsets.push_back(static_cast<int>(targets.size()));
  }
  return graph::Digraph(std::move(offsets), std::move(targets));
}

}  // namespace dirant::antenna
