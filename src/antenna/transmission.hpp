#pragma once
/// \file transmission.hpp
/// The induced communication digraph (paper §1.1): a directed edge (u, v)
/// exists iff v lies within the spread and range of some antenna at u.
/// This module knows nothing about how an orientation was constructed — it
/// is the independent certifier the validation layer builds on.

#include <span>

#include "antenna/orientation.hpp"
#include "graph/digraph.hpp"

namespace dirant::antenna {

/// Build the induced digraph by brute force (O(n^2 * antennas)); reference
/// implementation used for certification.
graph::Digraph induced_digraph(std::span<const geom::Point> pts,
                               const Orientation& o,
                               double angle_tol = dirant::kAngleTol,
                               double radius_tol = dirant::kRadiusAbsTol);

/// Grid-accelerated equivalent (same result; used for large instances).
graph::Digraph induced_digraph_fast(std::span<const geom::Point> pts,
                                    const Orientation& o,
                                    double angle_tol = dirant::kAngleTol,
                                    double radius_tol = dirant::kRadiusAbsTol);

/// Omnidirectional reference: edge (u, v) iff dist(u, v) <= radius.
/// Symmetric by construction; used by the simulator as a baseline.
graph::Digraph unit_disk_digraph(std::span<const geom::Point> pts,
                                 double radius);

}  // namespace dirant::antenna
