#pragma once
/// \file transmission.hpp
/// The induced communication digraph (paper §1.1): a directed edge (u, v)
/// exists iff v lies within the spread and range of some antenna at u.
/// This module knows nothing about how an orientation was constructed — it
/// is the independent certifier the validation layer builds on.

#include <span>
#include <vector>

#include "antenna/orientation.hpp"
#include "graph/digraph.hpp"

namespace dirant::antenna {

/// Reusable working memory for `induced_digraph_fast`.  The offsets/targets
/// buffers become the CSR arrays of the returned graph (moved, not copied);
/// callers that certify in a loop hand them back via `Digraph::release` so
/// the steady state allocates nothing.
struct TransmissionScratch {
  /// One sector flattened for the scan pass: precomputed containment
  /// parameters plus its grid cell window.  Internal to
  /// `induced_digraph_fast`; lives here only so the buffer is reusable.
  /// Exactly one cache line: the scan pass streams this array.
  struct FlatSector {
    double sx, sy, ex, ey;  ///< boundary-ray unit directions
    double limit2;          ///< squared radius limit incl. tolerances
    int x_lo, x_hi, y_lo, y_hi;  ///< clamped cell window
    int u;                       ///< source vertex (apex = pts[u])
    unsigned flags;              ///< kBeam / kFull / kWide bits
  };

  std::vector<char> seen;      ///< per-vertex dedup marks across sectors
  std::vector<int> candidates; ///< grid range-query hit buffer
  std::vector<FlatSector> flat;  ///< prepass output, one entry per sector
  std::vector<int> offsets;    ///< CSR prefix table under construction
  std::vector<int> targets;    ///< CSR edge heads under construction
};

/// Build the induced digraph by brute force (O(n^2 * antennas)); reference
/// implementation used for certification.
graph::Digraph induced_digraph(std::span<const geom::Point> pts,
                               const Orientation& o,
                               double angle_tol = dirant::kAngleTol,
                               double radius_tol = dirant::kRadiusAbsTol);

/// Grid-accelerated equivalent (same edge set; used for large instances).
/// Emits edges straight into CSR: sources are visited in increasing order,
/// so each vertex's row is closed by recording the running edge count — no
/// per-vertex sort or adjacency-list append.
graph::Digraph induced_digraph_fast(std::span<const geom::Point> pts,
                                    const Orientation& o,
                                    double angle_tol = dirant::kAngleTol,
                                    double radius_tol = dirant::kRadiusAbsTol);

/// Scratch-reusing variant for certification loops.
graph::Digraph induced_digraph_fast(std::span<const geom::Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol,
                                    TransmissionScratch& scratch);

/// Omnidirectional reference: edge (u, v) iff dist(u, v) <= radius.
/// Symmetric by construction; used by the simulator as a baseline.
graph::Digraph unit_disk_digraph(std::span<const geom::Point> pts,
                                 double radius);

}  // namespace dirant::antenna
