#pragma once
/// \file transmission.hpp
/// The induced communication digraph (paper §1.1): a directed edge (u, v)
/// exists iff v lies within the spread and range of some antenna at u.
/// This module knows nothing about how an orientation was constructed — it
/// is the independent certifier the validation layer builds on.

#include <span>
#include <vector>

#include "antenna/orientation.hpp"
#include "graph/digraph.hpp"
#include "spatial/grid_index.hpp"

namespace dirant::par {
class ThreadPool;
}

namespace dirant::antenna {

/// Reusable working memory for `induced_digraph_fast`.  The offsets/targets
/// buffers become the CSR arrays of the returned graph (moved, not copied);
/// callers that certify in a loop hand them back via `Digraph::release` so
/// the steady state allocates nothing.  The grid index itself is a member
/// recycled via `GridIndex::rebuild` — a warm same-size build touches no
/// heap at all.
struct TransmissionScratch {
  /// One sector flattened for the scan pass: precomputed containment
  /// parameters plus its grid cell window.  Internal to
  /// `induced_digraph_fast`; lives here only so the buffer is reusable.
  /// Exactly one cache line: the scan pass streams this array.
  struct FlatSector {
    double sx, sy, ex, ey;  ///< boundary-ray unit directions
    double limit2;          ///< squared radius limit incl. tolerances
    int x_lo, x_hi, y_lo, y_hi;  ///< clamped cell window
    int u;                       ///< source vertex (apex = pts[u])
    unsigned flags;              ///< kBeam / kFull / kWide bits
  };

  /// Phase-2 classifier selection.  kBatch (the default) classifies each
  /// sector's cell window directly over the grid's cell-ordered SoA
  /// coordinates — one lane-function call per sector covering the
  /// window's row runs — with a branch-light per-flags lane loop that
  /// fuses the distance filter and the accept test (autovectorized under
  /// the stock -O3, runtime-dispatched to wider x86-64 ISA levels via
  /// target_clones where supported); kScalar
  /// is the original fused per-candidate path, kept in-library as the
  /// equivalence oracle (tests) and the baseline of the x6 classifier
  /// bench.  The two produce BIT-IDENTICAL digraphs: same candidate
  /// enumeration order, same accept arithmetic, same dedup.
  enum class Classifier { kBatch, kScalar };

  /// Scratch for the batch classifier.  No gather arrays and no verdict
  /// stream: the lane loops read the grid's SoA coordinates in place,
  /// verdicts live in a fixed stack chunk inside the lane functions
  /// (0.0/1.0 doubles at compare width — what GCC's vectorizer needs at
  /// the baseline -march), and only the window's run list plus the
  /// compact survivor indices ever touch this scratch.
  struct SectorBatch {
    std::vector<int> runs;  ///< [begin, end) index pairs, one per window row
    std::vector<int> hits;  ///< surviving grid indices, emit order
  };

  /// Per-worker buffers of the sharded build: each shard classifies a
  /// contiguous node range into its own row chunk, then the stitch pass
  /// prefix-sums the chunk sizes into the final CSR.  Nothing is shared
  /// between shards during classification, so the build is race-free by
  /// construction.
  struct Shard {
    std::vector<char> seen;     ///< per-shard dedup marks (n entries)
    std::vector<int> row_end;   ///< per-node edge count, cumulative in-shard
    std::vector<int> targets;   ///< this shard's edge heads
    SectorBatch batch;          ///< per-shard SoA classifier buffers
    int node_lo = 0, node_hi = 0;  ///< node range [lo, hi)
    int edge_count = 0;            ///< targets emitted by the last build
    int base = 0;  ///< this chunk's offset in the stitched targets array
  };

  std::vector<char> seen;      ///< per-vertex dedup marks across sectors
  std::vector<int> candidates; ///< grid range-query hit buffer
  std::vector<FlatSector> flat;  ///< prepass output, one entry per sector
  std::vector<int> sector_start; ///< per-node prefix into `flat` (n+1)
  std::vector<int> offsets;    ///< CSR prefix table under construction
  std::vector<int> targets;    ///< CSR edge heads under construction
  spatial::GridIndex grid;     ///< recycled spatial index (rebuild per call)
  std::vector<Shard> shards;   ///< per-worker chunks of the sharded build
  SectorBatch batch;           ///< serial-path SoA classifier buffers
  Classifier classifier = Classifier::kBatch;  ///< phase-2 classifier knob
};

/// Build the induced digraph by brute force (O(n^2 * antennas)); reference
/// implementation used for certification.
graph::Digraph induced_digraph(std::span<const geom::Point> pts,
                               const Orientation& o,
                               double angle_tol = dirant::kAngleTol,
                               double radius_tol = dirant::kRadiusAbsTol);

/// Grid-accelerated equivalent (same edge set; used for large instances).
/// Emits edges straight into CSR: sources are visited in increasing order,
/// so each vertex's row is closed by recording the running edge count — no
/// per-vertex sort or adjacency-list append.
graph::Digraph induced_digraph_fast(std::span<const geom::Point> pts,
                                    const Orientation& o,
                                    double angle_tol = dirant::kAngleTol,
                                    double radius_tol = dirant::kRadiusAbsTol);

/// Scratch-reusing variant for certification loops.  `threads` selects the
/// sharded build (node ranges classified into per-worker row chunks, then a
/// deterministic prefix-sum stitch assembles the CSR): the result is
/// BIT-IDENTICAL to the serial build — same offsets, same targets, same
/// order — for every shard count, because each row is produced by the same
/// code on the same inputs and rows concatenate in node order.  Shard tasks
/// run on `pool` when given (concurrency = min(threads, pool workers)) and
/// inline otherwise (sharded code path, serial execution).  `threads <= 1`
/// is the classic serial streaming build and performs zero heap allocations
/// once `scratch` is warm.
graph::Digraph induced_digraph_fast(std::span<const geom::Point> pts,
                                    const Orientation& o, double angle_tol,
                                    double radius_tol,
                                    TransmissionScratch& scratch,
                                    int threads = 1,
                                    par::ThreadPool* pool = nullptr);

/// Single-edge membership test: does any antenna at `u` cover `v`?  This is
/// the digraph builders' accept predicate factored out per edge — same
/// arithmetic, same tolerance semantics, compiled in the same translation
/// unit (with contraction off), so `sector_accepts(pts, o, u, v) == (v in
/// induced_digraph(pts, o).out(u))` bit for bit.  Incremental recertifiers
/// (sim::ChurnEngine) use it to retest only the edges incident to dirty
/// sectors instead of rebuilding whole rows.  O(antennas at u).
bool sector_accepts(std::span<const geom::Point> pts, const Orientation& o,
                    int u, int v, double angle_tol = dirant::kAngleTol,
                    double radius_tol = dirant::kRadiusAbsTol);

/// Omnidirectional reference: edge (u, v) iff dist(u, v) <= radius.
/// Symmetric by construction; used by the simulator as a baseline.
graph::Digraph unit_disk_digraph(std::span<const geom::Point> pts,
                                 double radius);

/// Scratch-reusing variant: the grid index is recycled via
/// `GridIndex::rebuild` and the offsets/targets buffers become the CSR
/// arrays of the returned graph.  Audit loops (sim::AuditSession) hand the
/// buffers back through `Digraph::release`, so rebuilding the omni
/// reference digraph per audit allocates nothing in steady state.
graph::Digraph unit_disk_digraph(std::span<const geom::Point> pts,
                                 double radius, TransmissionScratch& scratch);

}  // namespace dirant::antenna
