#pragma once
/// \file assert.hpp
/// Contract checking for the dirant library.
///
/// DIRANT_ASSERT stays enabled in all build types: the orientation algorithms
/// encode theorem preconditions as contracts, and the test-suite relies on a
/// violated contract surfacing as a structured exception rather than UB.
/// Hot inner loops (distance scans, predicate filters) deliberately avoid it.

#include <stdexcept>
#include <string>

namespace dirant {

/// Thrown when a DIRANT_ASSERT contract is violated.  Carries the failing
/// expression and source location so test logs pinpoint the broken invariant.
class contract_violation : public std::logic_error {
 public:
  explicit contract_violation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw contract_violation(std::string("contract violated: ") + expr + " at " +
                           file + ":" + std::to_string(line) +
                           (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace dirant

#define DIRANT_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::dirant::detail::assert_fail(#cond, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (false)

#define DIRANT_ASSERT_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::dirant::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (false)
