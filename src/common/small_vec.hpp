#pragma once
/// \file small_vec.hpp
/// Fixed-capacity inline vector for degree-bounded hot paths.  The paper's
/// constructions run over degree-<=5 spanning trees, so per-node worklists
/// (children, chords, candidate plans) have tiny compile-time bounds; keeping
/// them inline removes every per-node heap allocation from the orientation
/// pipeline.  Capacity overflow is a contract violation, not a reallocation.

#include <array>
#include <cstddef>
#include <utility>

#include "common/assert.hpp"

namespace dirant {

template <class T, int N>
class SmallVec {
 public:
  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  void push_back(const T& v) {
    DIRANT_ASSERT_MSG(size_ < N, "SmallVec capacity exceeded");
    data_[size_++] = v;
  }

  template <class... Args>
  void emplace_back(Args&&... args) {
    DIRANT_ASSERT_MSG(size_ < N, "SmallVec capacity exceeded");
    data_[size_++] = T{static_cast<Args&&>(args)...};
  }

  void pop_back() {
    DIRANT_ASSERT(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }
  void resize(int n) {
    DIRANT_ASSERT(n >= 0 && n <= N);
    for (int i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr int capacity() { return N; }

  T& operator[](int i) { return data_[i]; }
  const T& operator[](int i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_.data(); }
  T* end() { return data_.data() + size_; }
  const T* begin() const { return data_.data(); }
  const T* end() const { return data_.data() + size_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

 private:
  std::array<T, N> data_{};
  int size_ = 0;
};

/// Stable in-place insertion sort for the tiny degree-bounded ranges the
/// orienters stage per vertex.  Used instead of std::stable_sort (which
/// allocates a temporary buffer even for four elements, breaking the
/// session zero-allocation contract) and instead of std::sort on inline
/// storage (whose unguarded pointer arithmetic trips GCC's -Warray-bounds
/// under -Werror).  Stability: elements only move past strictly-greater
/// predecessors.
template <class It, class Less>
void insertion_sort(It first, It last, Less less) {
  for (It i = first; i != last; ++i) {
    for (It j = i; j != first && less(*j, *(j - 1)); --j) {
      std::swap(*j, *(j - 1));
    }
  }
}

}  // namespace dirant
