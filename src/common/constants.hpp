#pragma once
/// \file constants.hpp
/// Numeric constants shared across the library.  All angular quantities in
/// dirant are radians; all paper range bounds are expressed as multiples of
/// `lmax`, the longest edge of a degree-bounded Euclidean MST.

#include <numbers>

namespace dirant {

inline constexpr double kPi = std::numbers::pi_v<double>;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi_v<double>;

/// Default angular tolerance (radians) for sector-containment tests.
inline constexpr double kAngleTol = 1e-9;

/// Default metric tolerance used when certifying radii against paper bounds.
/// Bounds are validated as `measured <= bound * (1 + kRadiusRelTol) + kRadiusAbsTol`.
inline constexpr double kRadiusAbsTol = 1e-9;
inline constexpr double kRadiusRelTol = 1e-12;

}  // namespace dirant
