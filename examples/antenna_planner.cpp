// antenna_planner: command-line orientation planner.
//
//   example_antenna_planner [--input pts.csv | --random N] [--k K]
//                           [--phi RADIANS | --phi-pi MULTIPLE]
//                           [--svg out.svg] [--seed S]
//
// Reads a deployment (or generates one), picks the best Table 1 regime for
// the (k, phi) budget, prints the per-sensor antenna plan and the
// certificate, and optionally renders the result to SVG.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/constants.hpp"
#include "core/planner.hpp"
#include "core/validate.hpp"
#include "geometry/generators.hpp"
#include "io/csv.hpp"
#include "io/svg.hpp"
#include "mst/degree5.hpp"

int main(int argc, char** argv) {
  namespace geom = dirant::geom;
  namespace core = dirant::core;

  std::string input, svg_out;
  int n_random = 40;
  int k = 2;
  double phi = dirant::kPi;
  unsigned long long seed = 42;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input = next();
    } else if (arg == "--random") {
      n_random = std::atoi(next());
    } else if (arg == "--k") {
      k = std::atoi(next());
    } else if (arg == "--phi") {
      phi = std::atof(next());
    } else if (arg == "--phi-pi") {
      phi = std::atof(next()) * dirant::kPi;
    } else if (arg == "--svg") {
      svg_out = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [--input pts.csv | --random N] [--k K] "
          "[--phi R | --phi-pi M] [--svg out.svg] [--seed S]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::vector<geom::Point> pts;
  if (!input.empty()) {
    pts = dirant::io::read_points_file(input);
  } else {
    geom::Rng rng(seed);
    pts = geom::uniform_square(n_random, std::sqrt(n_random) * 1.2, rng);
  }
  if (pts.empty()) {
    std::fprintf(stderr, "no sensors\n");
    return 2;
  }

  const core::ProblemSpec spec{k, phi};
  const auto tree = dirant::mst::degree5_emst(pts);
  const auto res = core::orient_on_tree(pts, tree, spec);
  const auto cert = core::certify(pts, res, spec);

  std::printf("# dirant antenna plan\n");
  std::printf("# sensors=%zu k=%d phi=%.6f algorithm=%s\n", pts.size(), k, phi,
              core::to_string(res.algorithm));
  std::printf("# lmax=%.6f guaranteed=%.6f measured=%.6f\n", res.lmax,
              res.bound_factor * res.lmax, res.measured_radius);
  std::printf("# certificate: strong=%d spread_ok=%d k_ok=%d radius_ok=%d\n",
              cert.strongly_connected, cert.spread_within_budget,
              cert.antennas_within_k, cert.radius_within_bound);
  std::printf("# sensor x y | antenna direction(rad) spread(rad) range\n");
  for (int u = 0; u < res.orientation.size(); ++u) {
    std::printf("%4d %12.6f %12.6f |", u, pts[u].x, pts[u].y);
    for (const auto& s : res.orientation.antennas(u)) {
      std::printf("  (%7.4f %7.4f %8.4f)", s.center(), s.width, s.radius);
    }
    std::printf("\n");
  }

  if (!svg_out.empty()) {
    dirant::io::write_svg_file(svg_out, pts, &res.orientation, &tree);
    std::printf("# wrote %s\n", svg_out.c_str());
  }
  return cert.ok() ? 0 : 1;
}
