// network_sim: the ad-hoc-network view of the paper's orientations.
// For each antenna budget, orient a 300-sensor deployment, then measure the
// network-level consequences: flooding rounds, hop stretch vs an
// omnidirectional deployment of equal range, interference ([19]'s model),
// energy, and the strong-connectivity level under node failures (the
// paper's open problem).

#include <cstdio>

#include "antenna/metrics.hpp"
#include "common/constants.hpp"
#include "core/planner.hpp"
#include "geometry/generators.hpp"
#include "sim/audit.hpp"

int main() {
  namespace geom = dirant::geom;
  namespace core = dirant::core;
  namespace sim = dirant::sim;
  using dirant::kPi;

  geom::Rng rng(777);
  const auto pts = geom::uniform_square(300, 17.0, rng);

  struct Budget {
    core::ProblemSpec spec;
    const char* label;
  };
  const Budget budgets[] = {
      {{1, 8 * kPi / 5}, "k=1 phi=8pi/5"},
      {{2, kPi}, "k=2 phi=pi   "},
      {{2, 2 * kPi / 3}, "k=2 phi=2pi/3"},
      {{3, 0.0}, "k=3 phi=0    "},
      {{4, 0.0}, "k=4 phi=0    "},
      {{5, 0.0}, "k=5 phi=0    "},
  };

  std::printf(
      "budget          | range    rounds  mean_hops  stretch  interf.red  "
      "energy.save  c-level\n");
  std::printf(
      "----------------+---------------------------------------------------"
      "-----------------\n");
  // One audit session for the whole sweep: each budget's digraph, omni
  // reference and transpose are built once and every metric reuses them
  // (the warm session allocates nothing after the first budget).
  sim::AuditSession audit;
  for (const auto& b : budgets) {
    const auto res = core::orient(pts, b.spec);
    audit.load(pts, res.orientation);
    const auto& omni = audit.load_omni(pts, res.measured_radius);
    const auto fl = audit.flood(0);
    const auto st = audit.hop_stretch(omni, 6);
    const auto inter = dirant::antenna::interference_stats(pts, res.orientation);
    const auto en = sim::energy_report(res.orientation);
    const int level = audit.strong_connectivity_level(2);
    std::printf("%s   | %6.3f   %5d   %7.2f   %6.2f   %8.2fx  %9.2fx   %d\n",
                b.label, res.measured_radius, fl.rounds, fl.mean_hops,
                st.mean_stretch, inter.interference_reduction,
                en.saving_factor, level);
    if (fl.delivery_ratio < 1.0) {
      std::printf("!! delivery ratio %.3f — orientation broken\n",
                  fl.delivery_ratio);
      return 1;
    }
  }
  std::printf(
      "\nAll budgets delivered to 100%% of sensors (strong connectivity).\n"
      "Narrower total spread costs range (Table 1) and hops, but cuts\n"
      "interference and energy — the trade-off the paper quantifies.\n");
  return 0;
}
