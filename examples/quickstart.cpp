// Quickstart: orient 60 random sensors with two antennae per sensor whose
// spreads sum to pi, then certify the paper's guarantees (Theorem 3.1:
// strong connectivity with range <= 2*sin(2*pi/9) * lmax).
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "common/constants.hpp"
#include "core/session.hpp"
#include "core/validate.hpp"
#include "geometry/generators.hpp"

int main() {
  namespace geom = dirant::geom;
  namespace core = dirant::core;

  // 1. A deployment: 60 sensors uniform in a square.
  geom::Rng rng(2009);
  const auto sensors = geom::uniform_square(60, 8.0, rng);

  // 2. The budget: k = 2 antennae per sensor, total spread pi.
  const core::ProblemSpec spec{2, dirant::kPi};

  // 3. Orient through a PlanSession — the reusable pipeline.  (One-shot
  //    callers can use core::orient from core/planner.hpp instead; a held
  //    session makes repeated orient() calls allocation-free.)
  core::PlanSession session;
  const auto& result = session.orient(sensors, spec);

  // 4. Certify independently from the construction.
  const auto& cert = session.certify(sensors, spec);

  std::printf("algorithm          : %s\n", core::to_string(result.algorithm));
  std::printf("sensors            : %zu\n", sensors.size());
  std::printf("lmax (MST edge)    : %.4f\n", result.lmax);
  std::printf("guaranteed range   : %.4f  (= %.4f x lmax)\n",
              result.bound_factor * result.lmax, result.bound_factor);
  std::printf("measured range     : %.4f  (= %.4f x lmax)\n",
              result.measured_radius, result.measured_radius / result.lmax);
  std::printf("strongly connected : %s\n",
              cert.strongly_connected ? "yes" : "NO");
  std::printf("max spread used    : %.4f rad (budget %.4f)\n",
              cert.max_spread_sum, spec.phi);
  std::printf("antennas per node  : <= %d (k = %d)\n", cert.max_antennas,
              spec.k);
  std::printf("certificate        : %s\n", cert.ok() ? "OK" : "FAILED");
  return cert.ok() ? 0 : 1;
}
