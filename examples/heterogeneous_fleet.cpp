// heterogeneous_fleet: mixed antenna hardware.  A fleet where most sensors
// carry 1-2 antennae and a few hubs carry 4, with per-node angular budgets;
// the planner bidirects the MST wherever budgets allow and pinpoints the
// sensors whose hardware falls short.

#include <cstdio>

#include "antenna/transmission.hpp"
#include "common/constants.hpp"
#include "core/heterogeneous.hpp"
#include "core/lemma1.hpp"
#include "geometry/generators.hpp"
#include "graph/scc.hpp"
#include "mst/degree5.hpp"

int main() {
  namespace geom = dirant::geom;
  namespace core = dirant::core;

  geom::Rng rng(4711);
  const auto pts = geom::uniform_square(120, 11.0, rng);
  const auto tree = dirant::mst::degree5_emst(pts);
  const auto deg = tree.degrees();

  // Fleet: degree-proportional hardware, but a handful of nodes are
  // under-provisioned on purpose.
  std::vector<core::NodeBudget> budgets(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    const int k = deg[i] >= 4 ? 4 : (deg[i] >= 2 ? 2 : 1);
    budgets[i] = {k, core::lemma1_sufficient_spread(std::max(deg[i], 1), k)};
  }
  budgets[7] = {1, 0.3};   // broken gimbal
  budgets[23] = {1, 0.9};  // cheap hardware

  auto het = core::orient_heterogeneous(pts, tree, budgets);
  std::printf("fleet of %zu sensors, feasible: %s\n", pts.size(),
              het.feasible ? "yes" : "no");
  for (size_t i = 0; i < het.deficient.size(); ++i) {
    std::printf("  sensor %3d under-provisioned: needs %.3f rad more spread "
                "(degree %d, k=%d, phi=%.3f)\n",
                het.deficient[i], het.missing_spread[i],
                deg[het.deficient[i]], budgets[het.deficient[i]].k,
                budgets[het.deficient[i]].phi);
  }

  // Repair: grant the deficient sensors the spread they asked for.
  for (size_t i = 0; i < het.deficient.size(); ++i) {
    budgets[het.deficient[i]].phi += het.missing_spread[i] + 1e-9;
  }
  het = core::orient_heterogeneous(pts, tree, budgets);
  std::printf("after repair, feasible: %s\n", het.feasible ? "yes" : "no");
  if (het.feasible) {
    const auto g =
        dirant::antenna::induced_digraph(pts, het.result.orientation);
    std::printf("strongly connected: %s, range %.3f = %.3f x lmax\n",
                dirant::graph::is_strongly_connected(g) ? "yes" : "NO",
                het.result.measured_radius,
                het.result.measured_radius / het.result.lmax);
  }
  return het.feasible ? 0 : 1;
}
