// svg_gallery: renders one SVG per Table 1 regime for a small deployment —
// the library's equivalent of the paper's construction figures.  Files are
// written to the current directory as dirant_<algorithm>.svg.

#include <cstdio>
#include <string>

#include "common/constants.hpp"
#include "core/planner.hpp"
#include "geometry/generators.hpp"
#include "io/svg.hpp"
#include "mst/degree5.hpp"

int main() {
  namespace geom = dirant::geom;
  namespace core = dirant::core;
  using dirant::kPi;

  geom::Rng rng(99);
  auto pts = geom::star_with_center(5, 1.0);
  {
    auto extra = geom::uniform_square(25, 6.0, rng);
    for (auto& p : extra) pts.push_back(p + geom::Point{2.0, 2.0});
  }
  const auto tree = dirant::mst::degree5_emst(pts);

  const core::ProblemSpec specs[] = {
      {1, 8 * kPi / 5}, {1, kPi},        {2, kPi},
      {2, 2 * kPi / 3}, {3, 0.0},        {4, 0.0},
      {5, 0.0},
  };
  for (const auto& spec : specs) {
    const auto res = core::orient_on_tree(pts, tree, spec);
    const std::string name = std::string("dirant_") +
                             core::to_string(res.algorithm) + "_k" +
                             std::to_string(spec.k) + ".svg";
    dirant::io::write_svg_file(name, pts, &res.orientation, &tree);
    std::printf("wrote %-40s (radius %.3f x lmax, %d antennas)\n",
                name.c_str(), res.measured_radius / res.lmax,
                res.orientation.total_antennas());
  }
  return 0;
}
