// resilience_audit: the paper's open problem in practice.  Audits the
// strong-connectivity level of each construction, runs Monte-Carlo node
// failures, and demonstrates the bidirected-bottleneck-cycle construction
// that certifies strong 2-connectivity with k = 2 zero-spread antennae.

#include <cstdio>

#include "common/constants.hpp"
#include "core/planner.hpp"
#include "core/resilient.hpp"
#include "geometry/generators.hpp"
#include "mst/degree5.hpp"
#include "sim/audit.hpp"

int main() {
  namespace geom = dirant::geom;
  namespace core = dirant::core;
  namespace sim = dirant::sim;
  using dirant::kPi;

  geom::Rng rng(606);
  const auto pts = geom::uniform_square(48, 7.0, rng);
  const auto tree = dirant::mst::degree5_emst(pts);

  struct Entry {
    const char* label;
    core::Result res;
  };
  std::vector<Entry> entries;
  entries.push_back({"k=2 tree (Thm 3.1)   ",
                     core::orient_on_tree(pts, tree, {2, kPi})});
  entries.push_back({"k=3 chords (Thm 5)   ",
                     core::orient_on_tree(pts, tree, {3, 0.0})});
  entries.push_back({"k=5 beams (folklore) ",
                     core::orient_on_tree(pts, tree, {5, 0.0})});
  entries.push_back({"k=2 bidirected cycle ",
                     core::orient_bidirectional_cycle(pts, tree)});

  std::printf("construction           range(xlmax)  c-level  "
              "surviving@5%%fail  @15%%fail\n");
  std::printf("--------------------------------------------------------------"
              "--------\n");
  // One audit session across constructions: each entry's digraph and
  // transpose are built once and the deletion probes + Monte-Carlo trials
  // all run off them.
  sim::AuditSession audit;
  for (const auto& e : entries) {
    audit.load(pts, e.res.orientation);
    const int level = audit.strong_connectivity_level(3);
    const auto f5 = audit.failure_resilience(0.05, 40, 1);
    const auto f15 = audit.failure_resilience(0.15, 40, 2);
    std::printf("%s  %8.3f       %d        %5.1f%%          %5.1f%%\n",
                e.label, e.res.measured_radius / e.res.lmax, level,
                100.0 * f5.mean_largest_scc, 100.0 * f15.mean_largest_scc);
  }
  std::printf(
      "\nTree-backed constructions certify c = 1 only (any articulation\n"
      "sensor kills them); the bidirected bottleneck cycle certifies c = 2\n"
      "— one answer to the paper's §5 open problem — and keeps most of the\n"
      "network mutually reachable under random failures.\n");
  return 0;
}
