// tradeoff_explorer: sweeps the (k, phi) plane and prints the guaranteed
// and measured range for each budget — an interactive view of Table 1 and
// the Theorem 3 trade-off curve.

#include <cmath>
#include <cstdio>

#include "common/constants.hpp"
#include "core/planner.hpp"
#include "core/validate.hpp"
#include "geometry/generators.hpp"
#include "mst/degree5.hpp"

int main() {
  namespace geom = dirant::geom;
  namespace core = dirant::core;
  using dirant::kPi;

  geom::Rng rng(31415);
  const auto pts = geom::uniform_square(200, 14.0, rng);
  const auto tree = dirant::mst::degree5_emst(pts);
  const double lmax = tree.lmax();
  std::printf("deployment: n=%zu, lmax=%.4f\n\n", pts.size(), lmax);

  std::printf("k  phi/pi  algorithm            bound(xlmax)  measured(xlmax)"
              "  certified\n");
  std::printf("--------------------------------------------------------------"
              "---------\n");
  for (int k = 1; k <= 5; ++k) {
    for (double mult = 0.0; mult <= 1.61; mult += 0.1) {
      const double phi = mult * kPi;
      const core::ProblemSpec spec{k, phi};
      const auto algo = core::planned_algorithm(spec);
      // Keep the NP-hard BTSP regime to a sparse sample: it is slow and the
      // result does not vary with phi.
      if (algo == core::Algorithm::kBtspCycle && mult > 0.05) continue;
      const auto res = core::orient_on_tree(pts, tree, spec);
      const auto cert = core::certify(pts, res, spec, /*fast=*/true);
      const double bound = std::isfinite(res.bound_factor)
                               ? res.bound_factor
                               : -1.0;
      std::printf("%d  %5.2f   %-20s  %10.4f    %10.4f      %s\n", k, mult,
                  core::to_string(res.algorithm), bound,
                  res.measured_radius / lmax, cert.ok() ? "yes" : "NO");
    }
    std::printf("\n");
  }
  std::printf(
      "bound = -1 marks the heuristic BTSP regime (approximation factor 2\n"
      "vs the optimal bottleneck cycle; no absolute lmax bound exists —\n"
      "see the sqrt(7) spider in DESIGN.md).\n");
  return 0;
}
